//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, in order per
//! connection (clients may pipeline; the optional `id` is echoed back so
//! responses can be matched). Grammar:
//!
//! ```text
//! request  = query | update | update_stream | health | metrics | shutdown
//! query    = {"op":"query", "p":[nodeid...], "q":[nodeid...],
//!             "phi":number, "agg":"sum"|"max",
//!             "deadline_ms":number?, "id":string?}
//! update   = {"op":"update",
//!             "updates":[{"u":nodeid,"v":nodeid,"w":weight}...],
//!             "id":string?}
//! update_stream = {"op":"update_stream", "seq":number,
//!             "updates":[{"u":nodeid,"v":nodeid,"w":weight}...],
//!             "id":string?}
//! health   = {"op":"health", "id":string?}
//! metrics  = {"op":"metrics", "id":string?}
//! shutdown = {"op":"shutdown", "id":string?}
//!
//! response = {"status":"ok", "id"?, "p_star":nodeid, "dist":number,
//!             "subset":[nodeid...], "strategy":string, "micros":number}
//!          | {"status":"empty", "id"?}          ; no p reaches k of Q
//!          | {"status":"cancelled", "id"?}      ; deadline exceeded
//!          | {"status":"shed", "id"?}           ; queue full, retry later
//!          | {"status":"updated", "id"?, "epoch":number, "applied":number}
//!          | {"status":"stream_ack", "id"?, "seq":number,
//!             "epoch":number, "applied":number} ; cumulative ack
//!          | {"status":"stream_error", "id"?, "kind":"gap"|"overflow",
//!             "expected":number, "got":number}
//!          | {"status":"error", "id"?, "error":string}
//!          | {"status":"upstream", "id"?, "shard":number, "error":string}
//!          | {"status":"health", "id"?, ...}
//!          | {"status":"metrics", "id"?, ...}
//!          | {"status":"bye", "id"?}            ; shutdown acknowledged
//! ```
//!
//! An `update` atomically sets the weights of the listed undirected edges
//! and publishes the next graph epoch without draining the server:
//! in-flight queries finish on the epoch they pinned, later queries see
//! the new weights. Validation (edge exists, weight at or above the
//! Euclidean admissibility floor) is all-or-nothing — on error nothing is
//! published.
//!
//! # The update stream
//!
//! `update_stream` is the long-lived counterpart of `update`: a
//! connection carries numbered segments (`seq` starts at 1, strictly
//! sequential per connection) and each accepted segment is answered with
//! a *cumulative* `stream_ack` whose `seq` is the highest contiguous
//! segment applied on this connection. A duplicate segment (`seq` at or
//! below the acked high-water mark) is re-acked idempotently with
//! `applied:0`; a segment arriving past the expected number gets a typed
//! `stream_error` with `kind:"gap"` (nothing is applied, the expected
//! number is returned so the client can rewind); a segment larger than
//! [`MAX_STREAM_SEGMENT`] edges gets `kind:"overflow"`. Senders keep at
//! most [`STREAM_WINDOW`] segments in flight (pipelined past the last
//! ack) so a stall never buffers unboundedly. A failed apply
//! (validation) answers `error` *without* advancing the stream, so the
//! client may repair and resend the same `seq`.
//!
//! The same serializer backs `fannr query --json`, so the CLI's output and
//! the server's cannot drift.

use crate::json::Json;
use fann_core::metrics::{LatencyHistogram, SearchStats};
use fann_core::{Aggregate, FannAnswer};
use roadnet::{Dist, NodeId, Weight, WeightUpdate};

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<String>,
    pub op: Op,
}

/// Most edges one `update_stream` segment may carry; larger segments are
/// rejected with a typed `stream_error` of kind `overflow`.
pub const MAX_STREAM_SEGMENT: usize = 4096;

/// Most unacked segments an `update_stream` sender keeps in flight
/// (client-side flow control; the per-connection reader processes
/// segments in order, so acks come back in sequence).
pub const STREAM_WINDOW: u64 = 32;

/// The request operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    Query(QuerySpec),
    /// Set the weights of the listed edges, publishing the next epoch.
    Update(Vec<WeightUpdate>),
    /// One numbered segment of a long-lived update stream (see the
    /// [module docs](self) for the sequencing/ack contract).
    UpdateStream {
        seq: u64,
        updates: Vec<WeightUpdate>,
    },
    Health,
    Metrics,
    Shutdown,
}

/// The payload of a `query` request.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    pub p: Vec<NodeId>,
    pub q: Vec<NodeId>,
    pub phi: f64,
    pub agg: Aggregate,
    /// Per-request deadline, measured from the moment the server admits
    /// the request (queue wait counts). `None` uses the server default.
    pub deadline_ms: Option<u64>,
}

fn update_list(v: &Json) -> Result<Vec<WeightUpdate>, String> {
    let arr = v
        .get("updates")
        .and_then(Json::as_arr)
        .ok_or_else(|| "'updates' must be an array".to_string())?;
    if arr.is_empty() {
        return Err("'updates' must not be empty".to_string());
    }
    arr.iter()
        .map(|e| {
            let node = |key: &'static str| {
                e.get(key)
                    .and_then(Json::as_u64)
                    .and_then(|n| NodeId::try_from(n).ok())
                    .ok_or_else(|| format!("update '{key}' must be a node id"))
            };
            let w = e
                .get("w")
                .and_then(Json::as_u64)
                .and_then(|n| Weight::try_from(n).ok())
                .ok_or_else(|| "update 'w' must be a positive weight".to_string())?;
            Ok(WeightUpdate {
                u: node("u")?,
                v: node("v")?,
                w,
            })
        })
        .collect()
}

fn node_list(v: &Json, key: &'static str) -> Result<Vec<NodeId>, String> {
    let arr = v
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("'{key}' must be an array of node ids"))?;
    arr.iter()
        .map(|x| {
            x.as_u64()
                .and_then(|n| NodeId::try_from(n).ok())
                .ok_or_else(|| format!("'{key}' contains a non-node-id value"))
        })
        .collect()
}

impl Request {
    /// Parse one request line. The error string is safe to echo back in an
    /// `error` response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let id = match v.get("id") {
            None | Some(Json::Null) => None,
            Some(j) => Some(
                j.as_str()
                    .ok_or_else(|| "'id' must be a string".to_string())?
                    .to_string(),
            ),
        };
        let op = match v.get("op").and_then(Json::as_str) {
            Some("query") => {
                let phi = v
                    .get("phi")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| "'phi' must be a number".to_string())?;
                let agg = match v.get("agg").and_then(Json::as_str) {
                    Some("sum") => Aggregate::Sum,
                    Some("max") => Aggregate::Max,
                    _ => return Err("'agg' must be \"sum\" or \"max\"".to_string()),
                };
                let deadline_ms = match v.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(j) => Some(j.as_u64().ok_or_else(|| {
                        "'deadline_ms' must be a non-negative integer".to_string()
                    })?),
                };
                Op::Query(QuerySpec {
                    p: node_list(&v, "p")?,
                    q: node_list(&v, "q")?,
                    phi,
                    agg,
                    deadline_ms,
                })
            }
            Some("update") => Op::Update(update_list(&v)?),
            Some("update_stream") => {
                let seq = v
                    .get("seq")
                    .and_then(Json::as_u64)
                    .filter(|&s| s >= 1)
                    .ok_or_else(|| "'seq' must be a positive integer".to_string())?;
                Op::UpdateStream {
                    seq,
                    updates: update_list(&v)?,
                }
            }
            Some("health") => Op::Health,
            Some("metrics") => Op::Metrics,
            Some("shutdown") => Op::Shutdown,
            Some(other) => return Err(format!("unknown op '{other}'")),
            None => return Err("'op' must be a string".to_string()),
        };
        Ok(Request { id, op })
    }

    /// Serialize to one request line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut members: Vec<(String, Json)> = Vec::new();
        let op = match &self.op {
            Op::Query(_) => "query",
            Op::Update(_) => "update",
            Op::UpdateStream { .. } => "update_stream",
            Op::Health => "health",
            Op::Metrics => "metrics",
            Op::Shutdown => "shutdown",
        };
        members.push(("op".into(), Json::from(op)));
        if let Op::Query(spec) = &self.op {
            members.push(("p".into(), ids_json(&spec.p)));
            members.push(("q".into(), ids_json(&spec.q)));
            members.push(("phi".into(), Json::Num(spec.phi)));
            members.push(("agg".into(), Json::from(spec.agg.to_string().as_str())));
            if let Some(ms) = spec.deadline_ms {
                members.push(("deadline_ms".into(), Json::from(ms)));
            }
        }
        if let Op::UpdateStream { seq, .. } = &self.op {
            members.push(("seq".into(), Json::from(*seq)));
        }
        if let Op::Update(updates) | Op::UpdateStream { updates, .. } = &self.op {
            members.push((
                "updates".into(),
                Json::Arr(
                    updates
                        .iter()
                        .map(|up| {
                            Json::Obj(vec![
                                ("u".into(), Json::from(up.u as u64)),
                                ("v".into(), Json::from(up.v as u64)),
                                ("w".into(), Json::from(up.w as u64)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(id) = &self.id {
            members.push(("id".into(), Json::from(id.as_str())));
        }
        Json::Obj(members).to_json()
    }
}

fn ids_json(ids: &[NodeId]) -> Json {
    Json::Arr(ids.iter().map(|&v| Json::from(v as u64)).collect())
}

fn region_json(r: &[f64; 4]) -> Json {
    Json::Arr(r.iter().map(|&x| Json::Num(x)).collect())
}

fn region_from(v: &Json) -> Option<[f64; 4]> {
    let arr = v.get("region").and_then(Json::as_arr)?;
    if arr.len() != 4 {
        return None;
    }
    let mut r = [0.0f64; 4];
    for (slot, x) in r.iter_mut().zip(arr) {
        *slot = x.as_f64()?;
    }
    Some(r)
}

/// Point-in-time server health, served inline even under overload.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HealthInfo {
    pub uptime_ms: u64,
    /// Queries currently executing on workers.
    pub inflight: u64,
    /// Queries admitted but not yet picked up.
    pub queued: u64,
    pub workers: u64,
    /// True once shutdown began (accepting no new connections).
    pub draining: bool,
    /// The currently published graph epoch (bumped by every `update`).
    pub epoch: u64,
    /// Hub labels lag the current graph (answers stay exact; affected
    /// pairs fall back to exact search until the background repair lands).
    pub stale: bool,
    /// Shard id when serving in `--shard` mode (absent otherwise).
    pub shard: Option<u32>,
    /// Nodes owned by this shard (0 outside shard mode).
    pub owned_nodes: u64,
    /// Region MBR `[min_x, min_y, max_x, max_y]` in shard mode.
    pub region: Option<[f64; 4]>,
    /// Hub roots replayed by the last scoped repair (equals
    /// `labels_total` for a full rebuild; 0 before any repair).
    pub labels_repaired: u64,
    /// Hub roots a full rebuild would run.
    pub labels_total: u64,
    /// G-tree leaves reassembled by the last scoped repair.
    pub repair_scoped_leaves: u64,
    /// G-tree matrix entries rewritten by the last scoped repair.
    pub gtree_entries_repaired: u64,
    /// G-tree matrix entries a full rebuild rewrites (the whole index).
    pub gtree_entries_total: u64,
    /// Wall time of the last repair pass, milliseconds.
    pub last_repair_ms: u64,
}

/// Aggregate serving counters for a `metrics` response.
#[derive(Debug, Clone, Default)]
pub struct MetricsInfo {
    /// Requests admitted to the queue (sheds excluded).
    pub requests: u64,
    pub ok: u64,
    pub empty: u64,
    pub cancelled: u64,
    pub shed: u64,
    pub errors: u64,
    /// Successfully applied `update` batches.
    pub updates: u64,
    /// The currently published graph epoch.
    pub epoch: u64,
    /// Answer-cache lookups served from the cache (0 when no cache is
    /// configured; see `fann_core::locality`).
    pub cache_hits: u64,
    /// Answer-cache lookups that had to compute.
    pub cache_misses: u64,
    /// Answers inserted into the cache.
    pub cache_insertions: u64,
    /// Cache entries dropped by weight-update batches.
    pub cache_invalidated: u64,
    /// Cache entries carried across an epoch bump by the region proof.
    pub cache_retained: u64,
    /// Cache entries dropped wholesale on capacity overflow.
    pub cache_evicted: u64,
    /// In-place cache-table compactions that reclaimed tombstones.
    pub cache_rebuilds: u64,
    /// Co-located batch windows executed (0 without batching).
    pub batches: u64,
    /// Queries answered through those batch windows.
    pub batch_queries: u64,
    /// Shard id when serving in `--shard` mode (absent otherwise).
    pub shard: Option<u32>,
    /// Nodes owned by this shard (0 outside shard mode).
    pub owned_nodes: u64,
    /// Region MBR `[min_x, min_y, max_x, max_y]` in shard mode.
    pub region: Option<[f64; 4]>,
    /// Router only: shards skipped by the `φM·mdist` bound before contact.
    pub shards_pruned: u64,
    /// Router only: shard requests actually sent.
    pub shards_contacted: u64,
    /// Router only: requests failed with a typed `upstream` error.
    pub upstream_errors: u64,
    /// `update_stream` segments accepted (acked with their own seq).
    pub stream_segments: u64,
    /// Edges applied through accepted stream segments.
    pub stream_updates: u64,
    /// Hub roots replayed by the last scoped repair (router: summed over
    /// shards).
    pub labels_repaired: u64,
    /// Hub roots a full rebuild would run (router: summed over shards).
    pub labels_total: u64,
    /// G-tree leaves reassembled by the last scoped repair (router:
    /// summed over shards).
    pub repair_scoped_leaves: u64,
    /// Wall time of the last repair pass, milliseconds (router: max over
    /// shards).
    pub last_repair_ms: u64,
    pub latency: LatencyHistogram,
    pub search: SearchStats,
}

// The histogram has no equality of its own; compare what the wire format
// carries (counts + quantiles), which is also what tests assert on.
impl PartialEq for MetricsInfo {
    fn eq(&self, other: &Self) -> bool {
        self.requests == other.requests
            && self.ok == other.ok
            && self.empty == other.empty
            && self.cancelled == other.cancelled
            && self.shed == other.shed
            && self.errors == other.errors
            && self.updates == other.updates
            && self.epoch == other.epoch
            && self.cache_hits == other.cache_hits
            && self.cache_misses == other.cache_misses
            && self.cache_insertions == other.cache_insertions
            && self.cache_invalidated == other.cache_invalidated
            && self.cache_retained == other.cache_retained
            && self.cache_evicted == other.cache_evicted
            && self.cache_rebuilds == other.cache_rebuilds
            && self.batches == other.batches
            && self.batch_queries == other.batch_queries
            && self.shard == other.shard
            && self.owned_nodes == other.owned_nodes
            && self.region == other.region
            && self.shards_pruned == other.shards_pruned
            && self.shards_contacted == other.shards_contacted
            && self.upstream_errors == other.upstream_errors
            && self.stream_segments == other.stream_segments
            && self.stream_updates == other.stream_updates
            && self.labels_repaired == other.labels_repaired
            && self.labels_total == other.labels_total
            && self.repair_scoped_leaves == other.repair_scoped_leaves
            && self.last_repair_ms == other.last_repair_ms
            && self.search == other.search
            && self.latency.count() == other.latency.count()
            && self.latency.p50_ns() == other.latency.p50_ns()
            && self.latency.p90_ns() == other.latency.p90_ns()
            && self.latency.p99_ns() == other.latency.p99_ns()
            && self.latency.max_ns() == other.latency.max_ns()
    }
}

/// Why an `update_stream` segment was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamErrorKind {
    /// The segment number skipped ahead of the next expected one.
    Gap,
    /// The segment carried more than [`MAX_STREAM_SEGMENT`] edges.
    Overflow,
}

impl StreamErrorKind {
    pub fn name(&self) -> &'static str {
        match self {
            StreamErrorKind::Gap => "gap",
            StreamErrorKind::Overflow => "overflow",
        }
    }
}

/// One response line, matched to its request by the echoed `id`.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub id: Option<String>,
    pub body: Body,
}

/// The response payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// The answer plus which strategy produced it and the service time.
    Ok {
        p_star: NodeId,
        dist: Dist,
        subset: Vec<NodeId>,
        strategy: String,
        micros: u64,
    },
    /// Valid query, but no data point reaches `ceil(phi |Q|)` query points.
    Empty,
    /// The deadline passed before an answer was established.
    Cancelled,
    /// Load shed at admission: the queue was full. The query never ran.
    Shed,
    /// Weight updates applied and published; `epoch` is the new epoch,
    /// `applied` the number of edges changed.
    Updated {
        epoch: u64,
        applied: u64,
    },
    /// Cumulative stream acknowledgement: `seq` is the highest contiguous
    /// segment applied on this connection, `epoch` the published epoch
    /// after it, `applied` the edges applied by the segment that
    /// triggered this ack (0 on an idempotent duplicate re-ack).
    StreamAck {
        seq: u64,
        epoch: u64,
        applied: u64,
    },
    /// Typed stream-sequencing failure; nothing was applied. For `Gap`,
    /// `expected`/`got` are segment numbers; for `Overflow`, the segment
    /// cap and the offered segment size.
    StreamError {
        kind: StreamErrorKind,
        expected: u64,
        got: u64,
    },
    Error {
        error: String,
    },
    /// A shard (or its connection) failed while it was still needed for a
    /// correct answer: the request degrades with a typed error naming the
    /// shard instead of a generic disconnect or a wrong merged answer.
    Upstream {
        shard: u32,
        error: String,
    },
    Health(HealthInfo),
    Metrics(Box<MetricsInfo>),
    /// Shutdown acknowledged; the server is draining.
    Bye,
}

impl Response {
    /// The `status` field value for this body.
    pub fn status(&self) -> &'static str {
        match &self.body {
            Body::Ok { .. } => "ok",
            Body::Empty => "empty",
            Body::Cancelled => "cancelled",
            Body::Shed => "shed",
            Body::Updated { .. } => "updated",
            Body::StreamAck { .. } => "stream_ack",
            Body::StreamError { .. } => "stream_error",
            Body::Error { .. } => "error",
            Body::Upstream { .. } => "upstream",
            Body::Health(_) => "health",
            Body::Metrics(_) => "metrics",
            Body::Bye => "bye",
        }
    }

    /// Serialize to one response line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut members: Vec<(String, Json)> = vec![("status".into(), Json::from(self.status()))];
        if let Some(id) = &self.id {
            members.push(("id".into(), Json::from(id.as_str())));
        }
        match &self.body {
            Body::Ok {
                p_star,
                dist,
                subset,
                strategy,
                micros,
            } => {
                members.push(("p_star".into(), Json::from(*p_star as u64)));
                members.push(("dist".into(), Json::from(*dist)));
                members.push(("subset".into(), ids_json(subset)));
                members.push(("strategy".into(), Json::from(strategy.as_str())));
                members.push(("micros".into(), Json::from(*micros)));
            }
            Body::Empty | Body::Cancelled | Body::Shed | Body::Bye => {}
            Body::Updated { epoch, applied } => {
                members.push(("epoch".into(), Json::from(*epoch)));
                members.push(("applied".into(), Json::from(*applied)));
            }
            Body::StreamAck {
                seq,
                epoch,
                applied,
            } => {
                members.push(("seq".into(), Json::from(*seq)));
                members.push(("epoch".into(), Json::from(*epoch)));
                members.push(("applied".into(), Json::from(*applied)));
            }
            Body::StreamError {
                kind,
                expected,
                got,
            } => {
                members.push(("kind".into(), Json::from(kind.name())));
                members.push(("expected".into(), Json::from(*expected)));
                members.push(("got".into(), Json::from(*got)));
            }
            Body::Error { error } => {
                members.push(("error".into(), Json::from(error.as_str())));
            }
            Body::Upstream { shard, error } => {
                members.push(("shard".into(), Json::from(*shard as u64)));
                members.push(("error".into(), Json::from(error.as_str())));
            }
            Body::Health(h) => {
                members.push(("uptime_ms".into(), Json::from(h.uptime_ms)));
                members.push(("inflight".into(), Json::from(h.inflight)));
                members.push(("queued".into(), Json::from(h.queued)));
                members.push(("workers".into(), Json::from(h.workers)));
                members.push(("draining".into(), Json::Bool(h.draining)));
                members.push(("epoch".into(), Json::from(h.epoch)));
                members.push(("stale".into(), Json::Bool(h.stale)));
                if let Some(s) = h.shard {
                    members.push(("shard".into(), Json::from(s as u64)));
                    members.push(("owned_nodes".into(), Json::from(h.owned_nodes)));
                }
                if let Some(r) = h.region {
                    members.push(("region".into(), region_json(&r)));
                }
                members.push(("labels_repaired".into(), Json::from(h.labels_repaired)));
                members.push(("labels_total".into(), Json::from(h.labels_total)));
                members.push((
                    "repair_scoped_leaves".into(),
                    Json::from(h.repair_scoped_leaves),
                ));
                members.push((
                    "gtree_entries_repaired".into(),
                    Json::from(h.gtree_entries_repaired),
                ));
                members.push((
                    "gtree_entries_total".into(),
                    Json::from(h.gtree_entries_total),
                ));
                members.push(("last_repair_ms".into(), Json::from(h.last_repair_ms)));
            }
            Body::Metrics(m) => {
                members.push(("requests".into(), Json::from(m.requests)));
                members.push(("ok".into(), Json::from(m.ok)));
                members.push(("empty".into(), Json::from(m.empty)));
                members.push(("cancelled".into(), Json::from(m.cancelled)));
                members.push(("shed".into(), Json::from(m.shed)));
                members.push(("errors".into(), Json::from(m.errors)));
                members.push(("updates".into(), Json::from(m.updates)));
                members.push(("epoch".into(), Json::from(m.epoch)));
                members.push(("cache_hits".into(), Json::from(m.cache_hits)));
                members.push(("cache_misses".into(), Json::from(m.cache_misses)));
                members.push(("cache_insertions".into(), Json::from(m.cache_insertions)));
                members.push(("cache_invalidated".into(), Json::from(m.cache_invalidated)));
                members.push(("cache_retained".into(), Json::from(m.cache_retained)));
                members.push(("cache_evicted".into(), Json::from(m.cache_evicted)));
                members.push(("cache_rebuilds".into(), Json::from(m.cache_rebuilds)));
                members.push(("batches".into(), Json::from(m.batches)));
                members.push(("batch_queries".into(), Json::from(m.batch_queries)));
                if let Some(s) = m.shard {
                    members.push(("shard".into(), Json::from(s as u64)));
                    members.push(("owned_nodes".into(), Json::from(m.owned_nodes)));
                }
                if let Some(r) = m.region {
                    members.push(("region".into(), region_json(&r)));
                }
                members.push(("shards_pruned".into(), Json::from(m.shards_pruned)));
                members.push(("shards_contacted".into(), Json::from(m.shards_contacted)));
                members.push(("upstream_errors".into(), Json::from(m.upstream_errors)));
                members.push(("stream_segments".into(), Json::from(m.stream_segments)));
                members.push(("stream_updates".into(), Json::from(m.stream_updates)));
                members.push(("labels_repaired".into(), Json::from(m.labels_repaired)));
                members.push(("labels_total".into(), Json::from(m.labels_total)));
                members.push((
                    "repair_scoped_leaves".into(),
                    Json::from(m.repair_scoped_leaves),
                ));
                members.push(("last_repair_ms".into(), Json::from(m.last_repair_ms)));
                members.push(("p50_us".into(), Json::from(m.latency.p50_ns() / 1_000)));
                members.push(("p90_us".into(), Json::from(m.latency.p90_ns() / 1_000)));
                members.push(("p99_us".into(), Json::from(m.latency.p99_ns() / 1_000)));
                members.push(("max_us".into(), Json::from(m.latency.max_ns() / 1_000)));
                let s = &m.search;
                members.push((
                    "search".into(),
                    Json::Obj(vec![
                        ("nodes_settled".into(), Json::from(s.nodes_settled)),
                        ("heap_pushes".into(), Json::from(s.heap_pushes)),
                        ("heap_pops".into(), Json::from(s.heap_pops)),
                        ("edges_relaxed".into(), Json::from(s.edges_relaxed)),
                        ("gphi_evals".into(), Json::from(s.gphi_evals)),
                        ("oracle_calls".into(), Json::from(s.oracle_calls)),
                        ("label_lookups".into(), Json::from(s.label_lookups)),
                        ("rtree_nodes".into(), Json::from(s.rtree_nodes)),
                        ("candidates_pruned".into(), Json::from(s.candidates_pruned)),
                    ]),
                ));
            }
        }
        Json::Obj(members).to_json()
    }

    /// Parse one response line (the client side of the protocol).
    pub fn parse(line: &str) -> Result<Response, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let id = match v.get("id") {
            None | Some(Json::Null) => None,
            Some(j) => Some(
                j.as_str()
                    .ok_or_else(|| "'id' must be a string".to_string())?
                    .to_string(),
            ),
        };
        let u64_field = |key: &'static str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("'{key}' must be a non-negative integer"))
        };
        let body = match v.get("status").and_then(Json::as_str) {
            Some("ok") => Body::Ok {
                p_star: u64_field("p_star")? as NodeId,
                dist: u64_field("dist")?,
                subset: node_list(&v, "subset")?,
                strategy: v
                    .get("strategy")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                micros: u64_field("micros")?,
            },
            Some("empty") => Body::Empty,
            Some("cancelled") => Body::Cancelled,
            Some("shed") => Body::Shed,
            Some("updated") => Body::Updated {
                epoch: u64_field("epoch")?,
                applied: u64_field("applied")?,
            },
            Some("stream_ack") => Body::StreamAck {
                seq: u64_field("seq")?,
                epoch: u64_field("epoch")?,
                applied: u64_field("applied")?,
            },
            Some("stream_error") => Body::StreamError {
                kind: match v.get("kind").and_then(Json::as_str) {
                    Some("gap") => StreamErrorKind::Gap,
                    Some("overflow") => StreamErrorKind::Overflow,
                    _ => return Err("'kind' must be \"gap\" or \"overflow\"".to_string()),
                },
                expected: u64_field("expected")?,
                got: u64_field("got")?,
            },
            Some("error") => Body::Error {
                error: v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            },
            Some("upstream") => Body::Upstream {
                shard: u64_field("shard")? as u32,
                error: v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            },
            Some("health") => Body::Health(HealthInfo {
                uptime_ms: u64_field("uptime_ms")?,
                inflight: u64_field("inflight")?,
                queued: u64_field("queued")?,
                workers: u64_field("workers")?,
                draining: v
                    .get("draining")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| "'draining' must be a bool".to_string())?,
                epoch: u64_field("epoch")?,
                stale: v
                    .get("stale")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| "'stale' must be a bool".to_string())?,
                // Shard fields arrived with the partitioned serving tier;
                // tolerate their absence for non-shard servers.
                shard: v.get("shard").and_then(Json::as_u64).map(|s| s as u32),
                owned_nodes: v.get("owned_nodes").and_then(Json::as_u64).unwrap_or(0),
                region: region_from(&v),
                // Repair-footprint fields arrived with incremental
                // maintenance; tolerate their absence for older peers.
                labels_repaired: v.get("labels_repaired").and_then(Json::as_u64).unwrap_or(0),
                labels_total: v.get("labels_total").and_then(Json::as_u64).unwrap_or(0),
                repair_scoped_leaves: v
                    .get("repair_scoped_leaves")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                gtree_entries_repaired: v
                    .get("gtree_entries_repaired")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                gtree_entries_total: v
                    .get("gtree_entries_total")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                last_repair_ms: v.get("last_repair_ms").and_then(Json::as_u64).unwrap_or(0),
            }),
            Some("metrics") => {
                let mut m = MetricsInfo {
                    requests: u64_field("requests")?,
                    ok: u64_field("ok")?,
                    empty: u64_field("empty")?,
                    cancelled: u64_field("cancelled")?,
                    shed: u64_field("shed")?,
                    errors: u64_field("errors")?,
                    updates: u64_field("updates")?,
                    epoch: u64_field("epoch")?,
                    ..Default::default()
                };
                // Cache/batch counters arrived with the query-locality
                // layer; tolerate their absence for older peers.
                let opt = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
                m.cache_hits = opt("cache_hits");
                m.cache_misses = opt("cache_misses");
                m.cache_insertions = opt("cache_insertions");
                m.cache_invalidated = opt("cache_invalidated");
                m.cache_retained = opt("cache_retained");
                m.cache_evicted = opt("cache_evicted");
                m.cache_rebuilds = opt("cache_rebuilds");
                m.batches = opt("batches");
                m.batch_queries = opt("batch_queries");
                m.shard = v.get("shard").and_then(Json::as_u64).map(|s| s as u32);
                m.owned_nodes = opt("owned_nodes");
                m.region = region_from(&v);
                m.shards_pruned = opt("shards_pruned");
                m.shards_contacted = opt("shards_contacted");
                m.upstream_errors = opt("upstream_errors");
                m.stream_segments = opt("stream_segments");
                m.stream_updates = opt("stream_updates");
                m.labels_repaired = opt("labels_repaired");
                m.labels_total = opt("labels_total");
                m.repair_scoped_leaves = opt("repair_scoped_leaves");
                m.last_repair_ms = opt("last_repair_ms");
                // The histogram itself does not round-trip; carry the
                // quantiles through as single samples so the client can
                // still display them.
                for key in ["p50_us", "p90_us", "p99_us"] {
                    if let Some(us) = v.get(key).and_then(Json::as_u64) {
                        m.latency.record_ns(us.saturating_mul(1_000));
                    }
                }
                if let Some(s) = v.get("search") {
                    let f = |key: &str| s.get(key).and_then(Json::as_u64).unwrap_or(0);
                    m.search = SearchStats {
                        nodes_settled: f("nodes_settled"),
                        heap_pushes: f("heap_pushes"),
                        heap_pops: f("heap_pops"),
                        edges_relaxed: f("edges_relaxed"),
                        gphi_evals: f("gphi_evals"),
                        oracle_calls: f("oracle_calls"),
                        label_lookups: f("label_lookups"),
                        rtree_nodes: f("rtree_nodes"),
                        candidates_pruned: f("candidates_pruned"),
                    };
                }
                Body::Metrics(Box::new(m))
            }
            Some("bye") => Body::Bye,
            Some(other) => return Err(format!("unknown status '{other}'")),
            None => return Err("'status' must be a string".to_string()),
        };
        Ok(Response { id, body })
    }

    /// Build the response body for an answered query — the single
    /// serializer shared by the server and `fannr query --json`.
    pub fn for_answer(
        id: Option<String>,
        answer: Option<&FannAnswer>,
        strategy: &str,
        micros: u64,
    ) -> Response {
        let body = match answer {
            Some(a) => Body::Ok {
                p_star: a.p_star,
                dist: a.dist,
                subset: a.subset.clone(),
                strategy: strategy.to_string(),
                micros,
            },
            None => Body::Empty,
        };
        Response { id, body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_request_roundtrips() {
        let req = Request {
            id: Some("r-1".into()),
            op: Op::Query(QuerySpec {
                p: vec![1, 2, 3],
                q: vec![9, 10],
                phi: 0.5,
                agg: Aggregate::Max,
                deadline_ms: Some(50),
            }),
        };
        let line = req.to_json();
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn control_requests_roundtrip() {
        for op in [Op::Health, Op::Metrics, Op::Shutdown] {
            let req = Request { id: None, op };
            assert_eq!(Request::parse(&req.to_json()).unwrap(), req);
        }
    }

    #[test]
    fn update_request_roundtrips() {
        let req = Request {
            id: Some("u-1".into()),
            op: Op::Update(vec![
                WeightUpdate { u: 1, v: 2, w: 30 },
                WeightUpdate { u: 4, v: 5, w: 6 },
            ]),
        };
        let line = req.to_json();
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn update_request_rejects_malformed_batches() {
        for bad in [
            r#"{"op":"update"}"#,
            r#"{"op":"update","updates":[]}"#,
            r#"{"op":"update","updates":[{"u":1,"v":2}]}"#,
            r#"{"op":"update","updates":[{"u":1,"v":2,"w":-3}]}"#,
            r#"{"op":"update","updates":[{"u":-1,"v":2,"w":3}]}"#,
            r#"{"op":"update","updates":[{"u":1,"v":2,"w":4294967296}]}"#,
            r#"{"op":"update","updates":"yes"}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn update_stream_request_roundtrips() {
        let req = Request {
            id: Some("s-4".into()),
            op: Op::UpdateStream {
                seq: 17,
                updates: vec![WeightUpdate { u: 3, v: 9, w: 41 }],
            },
        };
        let line = req.to_json();
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn update_stream_request_rejects_bad_seq() {
        for bad in [
            r#"{"op":"update_stream","updates":[{"u":1,"v":2,"w":3}]}"#,
            r#"{"op":"update_stream","seq":0,"updates":[{"u":1,"v":2,"w":3}]}"#,
            r#"{"op":"update_stream","seq":-1,"updates":[{"u":1,"v":2,"w":3}]}"#,
            r#"{"op":"update_stream","seq":"x","updates":[{"u":1,"v":2,"w":3}]}"#,
            r#"{"op":"update_stream","seq":1,"updates":[]}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn stream_ack_and_error_roundtrip() {
        let ack = Response {
            id: Some("s-4".into()),
            body: Body::StreamAck {
                seq: 17,
                epoch: 9,
                applied: 3,
            },
        };
        let line = ack.to_json();
        assert!(line.starts_with(r#"{"status":"stream_ack""#), "{line}");
        assert_eq!(Response::parse(&line).unwrap(), ack);
        for kind in [StreamErrorKind::Gap, StreamErrorKind::Overflow] {
            let err = Response {
                id: None,
                body: Body::StreamError {
                    kind,
                    expected: 5,
                    got: 9,
                },
            };
            assert_eq!(Response::parse(&err.to_json()).unwrap(), err);
        }
    }

    #[test]
    fn health_and_metrics_carry_repair_footprint() {
        let resp = Response {
            id: None,
            body: Body::Health(HealthInfo {
                labels_repaired: 12,
                labels_total: 50_000,
                repair_scoped_leaves: 2,
                gtree_entries_repaired: 96,
                gtree_entries_total: 18_432,
                last_repair_ms: 7,
                ..Default::default()
            }),
        };
        assert_eq!(Response::parse(&resp.to_json()).unwrap(), resp);
        let m = MetricsInfo {
            stream_segments: 40,
            stream_updates: 160,
            labels_repaired: 12,
            labels_total: 50_000,
            repair_scoped_leaves: 2,
            last_repair_ms: 7,
            ..Default::default()
        };
        let resp = Response {
            id: None,
            body: Body::Metrics(Box::new(m)),
        };
        match Response::parse(&resp.to_json()).unwrap().body {
            Body::Metrics(parsed) => {
                assert_eq!(parsed.stream_segments, 40);
                assert_eq!(parsed.stream_updates, 160);
                assert_eq!(parsed.labels_repaired, 12);
                assert_eq!(parsed.labels_total, 50_000);
                assert_eq!(parsed.repair_scoped_leaves, 2);
                assert_eq!(parsed.last_repair_ms, 7);
            }
            other => panic!("expected metrics, got {other:?}"),
        }
    }

    #[test]
    fn updated_response_roundtrips() {
        let resp = Response {
            id: Some("u-1".into()),
            body: Body::Updated {
                epoch: 7,
                applied: 3,
            },
        };
        let line = resp.to_json();
        assert!(line.starts_with(r#"{"status":"updated""#), "{line}");
        assert_eq!(Response::parse(&line).unwrap(), resp);
    }

    #[test]
    fn parse_rejects_bad_requests() {
        for bad in [
            "not json",
            r#"{"op":"nope"}"#,
            r#"{"op":"query","p":[1],"q":[2],"phi":"x","agg":"max"}"#,
            r#"{"op":"query","p":[1],"q":[2],"phi":0.5,"agg":"median"}"#,
            r#"{"op":"query","p":[-1],"q":[2],"phi":0.5,"agg":"max"}"#,
            r#"{"op":"query","p":[1],"q":[2],"phi":0.5,"agg":"max","deadline_ms":-5}"#,
            r#"{"op":"health","id":7}"#,
            r#"{"phi":0.5}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn ok_response_roundtrips() {
        let resp = Response::for_answer(
            Some("q7".into()),
            Some(&FannAnswer {
                p_star: 42,
                subset: vec![1, 5],
                dist: 1234,
            }),
            "Exact-max",
            87,
        );
        let line = resp.to_json();
        assert!(line.starts_with(r#"{"status":"ok","id":"q7""#), "{line}");
        assert_eq!(Response::parse(&line).unwrap(), resp);
    }

    #[test]
    fn empty_and_terminal_responses_roundtrip() {
        for body in [Body::Empty, Body::Cancelled, Body::Shed, Body::Bye] {
            let resp = Response {
                id: Some("x".into()),
                body,
            };
            assert_eq!(Response::parse(&resp.to_json()).unwrap(), resp);
        }
    }

    #[test]
    fn health_roundtrips() {
        let resp = Response {
            id: None,
            body: Body::Health(HealthInfo {
                uptime_ms: 12,
                inflight: 2,
                queued: 5,
                workers: 4,
                draining: true,
                epoch: 9,
                stale: true,
                ..Default::default()
            }),
        };
        assert_eq!(Response::parse(&resp.to_json()).unwrap(), resp);
    }

    #[test]
    fn metrics_serializes_counters_and_quantiles() {
        let mut m = MetricsInfo {
            requests: 10,
            ok: 8,
            cancelled: 1,
            shed: 1,
            ..Default::default()
        };
        for _ in 0..10 {
            m.latency.record_ns(2_000_000);
        }
        m.search.nodes_settled = 999;
        let resp = Response {
            id: None,
            body: Body::Metrics(Box::new(m)),
        };
        let line = resp.to_json();
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("requests").and_then(Json::as_u64), Some(10));
        assert!(v.get("p50_us").and_then(Json::as_u64).unwrap() >= 1_000);
        assert_eq!(
            v.get("search")
                .unwrap()
                .get("nodes_settled")
                .and_then(Json::as_u64),
            Some(999)
        );
    }

    #[test]
    fn upstream_response_roundtrips() {
        let resp = Response {
            id: Some("q9".into()),
            body: Body::Upstream {
                shard: 1,
                error: "connection refused".into(),
            },
        };
        let line = resp.to_json();
        assert!(line.starts_with(r#"{"status":"upstream""#), "{line}");
        assert_eq!(Response::parse(&line).unwrap(), resp);
    }

    #[test]
    fn shard_health_and_metrics_roundtrip() {
        let resp = Response {
            id: None,
            body: Body::Health(HealthInfo {
                uptime_ms: 3,
                workers: 2,
                epoch: 1,
                shard: Some(1),
                owned_nodes: 512,
                region: Some([-1.25, 0.0, 37.5, 99.0]),
                ..Default::default()
            }),
        };
        assert_eq!(Response::parse(&resp.to_json()).unwrap(), resp);

        let m = MetricsInfo {
            requests: 4,
            shard: Some(0),
            owned_nodes: 256,
            region: Some([0.5, 0.5, 8.0, 8.0]),
            shards_pruned: 7,
            shards_contacted: 9,
            upstream_errors: 1,
            ..Default::default()
        };
        let resp = Response {
            id: None,
            body: Body::Metrics(Box::new(m)),
        };
        // The histogram does not round-trip count-for-count (quantiles come
        // back as samples); assert on the parsed shard fields directly.
        match Response::parse(&resp.to_json()).unwrap().body {
            Body::Metrics(parsed) => {
                assert_eq!(parsed.shard, Some(0));
                assert_eq!(parsed.owned_nodes, 256);
                assert_eq!(parsed.region, Some([0.5, 0.5, 8.0, 8.0]));
                assert_eq!(parsed.shards_pruned, 7);
                assert_eq!(parsed.shards_contacted, 9);
                assert_eq!(parsed.upstream_errors, 1);
            }
            other => panic!("expected metrics, got {other:?}"),
        }
    }

    #[test]
    fn non_shard_health_omits_shard_fields() {
        let resp = Response {
            id: None,
            body: Body::Health(HealthInfo::default()),
        };
        let line = resp.to_json();
        assert!(!line.contains("shard"), "{line}");
        assert!(!line.contains("region"), "{line}");
        assert_eq!(Response::parse(&line).unwrap(), resp);
    }

    #[test]
    fn error_response_escapes_payload() {
        let resp = Response {
            id: None,
            body: Body::Error {
                error: "bad \"quote\"\nline".into(),
            },
        };
        let parsed = Response::parse(&resp.to_json()).unwrap();
        assert_eq!(parsed, resp);
    }
}
