//! A small blocking client for the line protocol, used by `loadgen`, the
//! integration tests, and anyone scripting against the server.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{Request, Response};

/// The write half of a split connection (see [`Client::split`]).
pub struct ClientWriter {
    stream: TcpStream,
}

impl ClientWriter {
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.send_raw(&req.to_json())
    }

    /// Write one raw line (for driving the server with malformed input).
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }
}

/// The read half of a split connection (see [`Client::split`]).
pub struct ClientReader {
    reader: BufReader<TcpStream>,
}

impl ClientReader {
    /// Read and parse the next response line.
    pub fn recv(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        loop {
            match self.reader.read_line(&mut line) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(_) => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Response::parse(line.trim()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// One connection speaking the line protocol. Requests may be pipelined:
/// call [`Client::send`] repeatedly, then [`Client::recv`] each response
/// (match them up by `id`). For concurrent pipelining from two threads,
/// [`Client::split`] separates the halves.
pub struct Client {
    reader: ClientReader,
    writer: ClientWriter,
}

impl Client {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = ClientWriter {
            stream: stream.try_clone()?,
        };
        Ok(Client {
            reader: ClientReader {
                reader: BufReader::new(stream),
            },
            writer,
        })
    }

    /// Bound how long [`Client::recv`] waits for a response line.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.reader.get_ref().set_read_timeout(timeout)
    }

    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.writer.send(req)
    }

    /// Write one raw line (for driving the server with malformed input).
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.writer.send_raw(line)
    }

    /// Read and parse the next response line.
    pub fn recv(&mut self) -> io::Result<Response> {
        self.reader.recv()
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        self.recv()
    }

    /// Split into independently owned read/write halves (one socket
    /// underneath), so a paced writer thread and a response reader can
    /// run concurrently.
    pub fn split(self) -> (ClientReader, ClientWriter) {
        (self.reader, self.writer)
    }
}
