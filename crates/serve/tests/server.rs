//! End-to-end server tests over a real TCP socket: round-trip answers
//! cross-validated against the in-process engine, overload shedding,
//! deadline cancellation, inline observability, and graceful drain.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Duration;

use fann_core::engine::Engine;
use fann_core::Aggregate;
use fannr_serve::{Body, Client, Op, QuerySpec, Request, Response, ServeConfig, Server};
use roadnet::Graph;

fn test_graph(seed: u64, nodes: usize) -> Graph {
    let mut rng = workload::rng(seed);
    workload::synth::road_network(nodes, &mut rng)
}

fn pq(graph: &Graph, seed: u64) -> (Vec<u32>, Vec<u32>) {
    let mut rng = workload::rng(seed);
    let p = workload::points::uniform_data_points(graph, 0.1, &mut rng);
    let q = workload::points::uniform_query_points(graph, 4, 0.5, &mut rng);
    (p, q)
}

fn query_req(id: &str, p: &[u32], q: &[u32], phi: f64, agg: Aggregate) -> Request {
    Request {
        id: Some(id.to_string()),
        op: Op::Query(QuerySpec {
            p: p.to_vec(),
            q: q.to_vec(),
            phi,
            agg,
            deadline_ms: None,
        }),
    }
}

/// Trips shutdown on drop so a panicking test body cannot leave the
/// server thread running (which would deadlock `thread::scope`).
struct ShutdownGuard(fannr_serve::ShutdownHandle);

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Run `f` against a freshly served engine, then shut down and return the
/// summary alongside `f`'s result.
fn with_server<T>(
    config: ServeConfig,
    graph: &Graph,
    f: impl FnOnce(std::net::SocketAddr) -> T,
) -> (T, fannr_serve::ServeSummary) {
    let engine = Engine::new(graph);
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    let (out, summary) = thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(&engine).expect("serve"));
        let guard = ShutdownGuard(handle);
        let out = f(addr);
        drop(guard);
        (out, serving.join().expect("server thread"))
    });
    (out, summary)
}

fn free_port_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    }
}

/// Answers over the wire are bit-identical to in-process `Engine::query`,
/// for both aggregates, and responses match requests by id even when
/// pipelined.
#[test]
fn round_trip_matches_in_process_engine() {
    let graph = test_graph(7, 300);
    let (p, q) = pq(&graph, 8);
    let engine = Engine::new(&graph);

    let cases: Vec<(String, f64, Aggregate)> = vec![
        ("sum-half".into(), 0.5, Aggregate::Sum),
        ("max-half".into(), 0.5, Aggregate::Max),
        ("sum-all".into(), 1.0, Aggregate::Sum),
        ("max-quarter".into(), 0.25, Aggregate::Max),
    ];

    let ((), _summary) = with_server(free_port_config(), &graph, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        // Pipeline all requests before reading any response; workers may
        // finish out of order, so match responses back up by id.
        for (id, phi, agg) in &cases {
            client
                .send(&query_req(id, &p, &q, *phi, *agg))
                .expect("send");
        }
        let mut by_id = std::collections::HashMap::new();
        for _ in &cases {
            let resp = client.recv().expect("recv");
            let id = resp.id.clone().expect("response id");
            assert!(by_id.insert(id, resp).is_none(), "duplicate response id");
        }
        for (id, phi, agg) in &cases {
            let resp = &by_id[id.as_str()];
            let expected = engine.query(&p, &q, *phi, *agg).expect("valid query");
            match (&resp.body, expected) {
                (
                    Body::Ok {
                        p_star,
                        dist,
                        subset,
                        strategy,
                        ..
                    },
                    Some(ans),
                ) => {
                    assert_eq!(*p_star, ans.p_star, "{id}");
                    assert_eq!(*dist, ans.dist, "{id}");
                    assert_eq!(*subset, ans.subset, "{id}");
                    assert_eq!(strategy, engine.strategy_for(*agg).name());
                }
                (Body::Empty, None) => {}
                (body, expected) => panic!("{id}: got {body:?}, expected {expected:?}"),
            }
        }
    });
}

/// Malformed lines and invalid queries produce `error` responses without
/// killing the connection.
#[test]
fn errors_are_reported_and_connection_survives() {
    let graph = test_graph(9, 120);
    let (p, q) = pq(&graph, 10);

    with_server(free_port_config(), &graph, |addr| {
        let mut client = Client::connect(addr).expect("connect");

        client.send_raw("this is not json").expect("send");
        let resp = client.recv().expect("recv");
        assert!(matches!(resp.body, Body::Error { .. }), "{resp:?}");

        // Invalid phi (0 is out of range) — a protocol-level valid request
        // that the engine rejects.
        client
            .send(&query_req("bad-phi", &p, &q, 0.0, Aggregate::Max))
            .expect("send");
        let resp = client.recv().expect("recv");
        assert!(matches!(resp.body, Body::Error { .. }), "{resp:?}");

        // The connection still answers real queries afterwards.
        client
            .send(&query_req("ok", &p, &q, 0.5, Aggregate::Max))
            .expect("send");
        let resp = client.recv().expect("recv");
        assert!(matches!(resp.body, Body::Ok { .. }), "{resp:?}");
    });
}

/// A pre-expired deadline yields `cancelled` — never a wrong answer — and
/// the cancelled counter shows up in `metrics`.
#[test]
fn expired_deadline_cancels() {
    let graph = test_graph(11, 200);
    let (p, q) = pq(&graph, 12);

    with_server(free_port_config(), &graph, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let req = Request {
            id: Some("doomed".into()),
            op: Op::Query(QuerySpec {
                p: p.clone(),
                q: q.clone(),
                phi: 0.5,
                agg: Aggregate::Sum,
                deadline_ms: Some(0),
            }),
        };
        let resp = client.call(&req).expect("call");
        assert_eq!(resp.body, Body::Cancelled, "{resp:?}");

        let resp = client
            .call(&Request {
                id: None,
                op: Op::Metrics,
            })
            .expect("metrics");
        match resp.body {
            Body::Metrics(m) => assert!(m.cancelled >= 1, "{m:?}"),
            other => panic!("expected metrics, got {other:?}"),
        }
    });
}

/// With one slow worker and a depth-1 queue, a burst of pipelined queries
/// must shed some requests rather than buffer unboundedly — and every
/// request still gets exactly one response.
#[test]
fn overload_sheds_instead_of_buffering() {
    let graph = test_graph(13, 400);
    let (p, q) = pq(&graph, 14);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    };

    const BURST: usize = 24;
    let shed = AtomicUsize::new(0);
    let answered = AtomicUsize::new(0);

    let ((), summary) = with_server(config, &graph, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        for i in 0..BURST {
            client
                .send(&query_req(&format!("b{i}"), &p, &q, 0.5, Aggregate::Sum))
                .expect("send");
        }
        for _ in 0..BURST {
            let resp = client.recv().expect("recv");
            match resp.body {
                Body::Shed => {
                    shed.fetch_add(1, Ordering::Relaxed);
                }
                Body::Ok { .. } | Body::Empty => {
                    answered.fetch_add(1, Ordering::Relaxed);
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
    });

    let shed = shed.load(Ordering::Relaxed);
    let answered = answered.load(Ordering::Relaxed);
    assert_eq!(shed + answered, BURST);
    assert!(
        shed > 0,
        "burst of {BURST} through a depth-1 queue never shed"
    );
    assert!(answered > 0, "everything shed; nothing served");
    assert_eq!(summary.metrics.shed, shed as u64);
    assert_eq!(summary.metrics.ok + summary.metrics.empty, answered as u64);
}

/// `health` and `metrics` are answered inline, and the wire `shutdown` op
/// drains the server: the run loop exits and in-flight work completes.
#[test]
fn health_metrics_and_wire_shutdown() {
    let graph = test_graph(15, 150);
    let (p, q) = pq(&graph, 16);
    let engine = Engine::new(&graph);
    let server = Server::bind(free_port_config()).expect("bind");
    let addr = server.local_addr().expect("addr");

    let handle = server.shutdown_handle();
    let summary = thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(&engine).expect("serve"));
        let _guard = ShutdownGuard(handle);

        let mut client = Client::connect(addr).expect("connect");
        let resp = client
            .call(&Request {
                id: Some("h".into()),
                op: Op::Health,
            })
            .expect("health");
        match resp.body {
            Body::Health(h) => {
                assert!(!h.draining);
                assert!(h.workers >= 1);
            }
            other => panic!("expected health, got {other:?}"),
        }

        let resp = client
            .call(&query_req("warm", &p, &q, 0.5, Aggregate::Max))
            .expect("query");
        assert!(matches!(resp.body, Body::Ok { .. }), "{resp:?}");

        let resp = client
            .call(&Request {
                id: None,
                op: Op::Metrics,
            })
            .expect("metrics");
        match resp.body {
            Body::Metrics(m) => {
                assert_eq!(m.requests, 1);
                assert_eq!(m.ok, 1);
                assert!(m.search.nodes_settled > 0, "search stats not aggregated");
                // Client-side, the histogram is reconstructed from the
                // wire quantiles — only presence is meaningful.
                assert!(m.latency.count() > 0);
            }
            other => panic!("expected metrics, got {other:?}"),
        }

        let resp = client
            .call(&Request {
                id: Some("bye".into()),
                op: Op::Shutdown,
            })
            .expect("shutdown");
        assert_eq!(resp.body, Body::Bye);

        serving.join().expect("server thread")
    });

    assert_eq!(summary.metrics.ok, 1);
    assert_eq!(summary.connections, 1);
}

/// Queries admitted before shutdown are answered during the drain, not
/// dropped: pipeline a batch, immediately request shutdown, and count
/// exactly one response per request with no shed-after-admission.
#[test]
fn drain_completes_admitted_work() {
    let graph = test_graph(17, 200);
    let (p, q) = pq(&graph, 18);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 32,
        ..ServeConfig::default()
    };
    let engine = Engine::new(&graph);
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");

    const N: usize = 8;
    let handle = server.shutdown_handle();
    let summary = thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(&engine).expect("serve"));
        let _guard = ShutdownGuard(handle);

        let mut client = Client::connect(addr).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        for i in 0..N {
            client
                .send(&query_req(&format!("d{i}"), &p, &q, 0.5, Aggregate::Sum))
                .expect("send");
        }
        client
            .send(&Request {
                id: Some("stop".into()),
                op: Op::Shutdown,
            })
            .expect("send shutdown");

        let mut answered = 0;
        let mut saw_bye = false;
        for _ in 0..=N {
            match client.recv() {
                Ok(Response {
                    body: Body::Bye, ..
                }) => saw_bye = true,
                Ok(Response {
                    body: Body::Ok { .. } | Body::Empty | Body::Shed,
                    ..
                }) => answered += 1,
                Ok(other) => panic!("unexpected {other:?}"),
                Err(e) => panic!("lost responses during drain: {e}"),
            }
        }
        assert!(saw_bye, "no bye response");
        assert_eq!(answered, N);

        serving.join().expect("server thread")
    });

    // Everything admitted was answered (some tail requests may have been
    // shed if shutdown won the race, but nothing may be silently dropped).
    assert_eq!(
        summary.metrics.ok + summary.metrics.empty + summary.metrics.shed,
        N as u64
    );
}

/// With an answer cache attached, `metrics` accounts for a scripted
/// sequence *exactly*: misses on first sight, hits on repeats (including
/// permuted spellings of the same Q), and invalidation when an update
/// batch lands inside a cached query's region.
#[test]
fn metrics_account_for_cache_hits_misses_and_invalidations() {
    let graph = test_graph(19, 250);
    let (p, q1) = pq(&graph, 20);
    let (_, q2) = pq(&graph, 21);
    assert_ne!(q1, q2, "script needs two distinct Q sets");
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_capacity: 64,
        ..ServeConfig::default()
    };
    // An edge incident to q1[0]: its endpoint lies inside q1's bounding
    // region, so the update below must invalidate (never retain) the q1
    // entry.
    let (v, w) = graph.neighbors(q1[0]).next().expect("connected graph");

    let metrics = |client: &mut Client| -> fannr_serve::MetricsInfo {
        let resp = client
            .call(&Request {
                id: None,
                op: Op::Metrics,
            })
            .expect("metrics");
        match resp.body {
            Body::Metrics(m) => *m,
            other => panic!("expected metrics, got {other:?}"),
        }
    };

    let ((), summary) = with_server(config, &graph, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let ask = |client: &mut Client, id: &str, q: &[u32]| {
            let resp = client
                .call(&query_req(id, &p, q, 0.5, Aggregate::Max))
                .expect("call");
            assert!(
                matches!(resp.body, Body::Ok { .. } | Body::Empty),
                "{resp:?}"
            );
        };

        // Script: q1 (miss) -> q1 (hit) -> permuted q1 (hit) -> q2 (miss).
        ask(&mut client, "m1", &q1);
        ask(&mut client, "h1", &q1);
        let mut q1_permuted = q1.clone();
        q1_permuted.reverse();
        q1_permuted.push(q1[0]); // duplicate member, same canonical set
        ask(&mut client, "h2", &q1_permuted);
        ask(&mut client, "m2", &q2);

        let m = metrics(&mut client);
        assert_eq!(m.cache_hits, 2, "{m:?}");
        assert_eq!(m.cache_misses, 2, "{m:?}");
        assert_eq!(m.cache_insertions, 2, "{m:?}");
        assert_eq!(m.cache_invalidated, 0, "{m:?}");

        // Update an edge whose endpoint sits inside q1's region: epoch
        // bumps, every cached entry is either invalidated or carried by
        // the region proof — and the q1 entry cannot be carried.
        let resp = client
            .call(&Request {
                id: Some("u".into()),
                op: Op::Update(vec![roadnet::WeightUpdate {
                    u: q1[0],
                    v,
                    w: w.saturating_mul(3),
                }]),
            })
            .expect("update");
        assert!(matches!(resp.body, Body::Updated { .. }), "{resp:?}");

        let m = metrics(&mut client);
        assert_eq!(
            m.cache_invalidated + m.cache_retained,
            2,
            "every live entry must be adjudicated: {m:?}"
        );
        assert!(m.cache_invalidated >= 1, "q1's entry must drop: {m:?}");

        // q1 again: the new epoch forces recomputation.
        ask(&mut client, "m3", &q1);
        let m = metrics(&mut client);
        assert_eq!(m.cache_hits, 2, "{m:?}");
        assert_eq!(m.cache_misses, 3, "{m:?}");
        assert_eq!(m.cache_insertions, 3, "{m:?}");
    });

    // The drain summary carries the same final accounting.
    let m = &summary.metrics;
    assert_eq!(m.cache_hits, 2);
    assert_eq!(m.cache_misses, 3);
    assert_eq!(m.cache_insertions, 3);
    assert!(m.cache_invalidated >= 1);
}

/// While a batch admission window is open (one worker, long window, a
/// query parked waiting for co-located company), `health` is still
/// answered inline — observability never queues behind batching.
#[test]
fn health_is_inline_while_a_batch_window_is_open() {
    let graph = test_graph(23, 150);
    let (p, q) = pq(&graph, 24);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        cache_capacity: 16,
        batch_window: Some(Duration::from_millis(600)),
        batch_max: 16,
        ..ServeConfig::default()
    };

    let ((), summary) = with_server(config, &graph, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let started = std::time::Instant::now();
        // The lone worker takes this job and holds the admission window
        // open waiting for co-located queries that never come.
        client
            .send(&query_req("windowed", &p, &q, 0.5, Aggregate::Max))
            .expect("send");
        client
            .send(&Request {
                id: Some("h".into()),
                op: Op::Health,
            })
            .expect("send health");

        // Health overtakes the parked query: it is answered by the reader
        // thread, well before the window can close.
        let resp = client.recv().expect("recv");
        assert_eq!(resp.id.as_deref(), Some("h"), "health must answer first");
        assert!(matches!(resp.body, Body::Health(_)), "{resp:?}");
        assert!(
            started.elapsed() < Duration::from_millis(400),
            "health took {:?} with a 600ms window open",
            started.elapsed()
        );

        // The windowed query still completes (after the window lapses).
        let resp = client.recv().expect("recv");
        assert_eq!(resp.id.as_deref(), Some("windowed"));
        assert!(
            matches!(resp.body, Body::Ok { .. } | Body::Empty),
            "{resp:?}"
        );
    });

    assert_eq!(summary.metrics.batches, 1);
    assert_eq!(summary.metrics.batch_queries, 1);
}

/// The update stream applies strictly ordered segments, re-acks duplicates
/// without re-applying, rejects gaps and oversized segments without side
/// effects, and leaves answers bit-identical to a local engine fed the
/// same updates.
#[test]
fn update_stream_orders_acks_and_stays_exact() {
    let graph = test_graph(31, 200);
    let (p, q) = pq(&graph, 32);
    let mirror = Engine::new(&graph);

    // Two disjoint single-edge segments, each tripling an edge weight.
    let mut edges = graph.edges();
    let (u1, v1, w1) = edges.next().expect("edge");
    let (u2, v2, w2) = edges
        .find(|&(a, b, _)| a != u1 && a != v1 && b != u1 && b != v1)
        .expect("second edge");
    let seg1 = vec![roadnet::WeightUpdate {
        u: u1,
        v: v1,
        w: w1.saturating_mul(3),
    }];
    let seg2 = vec![roadnet::WeightUpdate {
        u: u2,
        v: v2,
        w: w2.saturating_mul(3),
    }];

    let stream_req = |id: &str, seq: u64, updates: &[roadnet::WeightUpdate]| Request {
        id: Some(id.to_string()),
        op: Op::UpdateStream {
            seq,
            updates: updates.to_vec(),
        },
    };

    let ((), _summary) = with_server(free_port_config(), &graph, |addr| {
        let mut client = Client::connect(addr).expect("connect");

        // Out-of-order first segment: rejected as a gap, nothing applied.
        let resp = client.call(&stream_req("gap", 2, &seg1)).expect("call");
        match resp.body {
            Body::StreamError {
                kind: fannr_serve::StreamErrorKind::Gap,
                expected,
                got,
            } => {
                assert_eq!(expected, 1);
                assert_eq!(got, 2);
            }
            other => panic!("expected gap error, got {other:?}"),
        }

        // Oversized segment: rejected, sequence unmoved.
        let fat = vec![seg1[0]; fannr_serve::MAX_STREAM_SEGMENT + 1];
        let resp = client.call(&stream_req("fat", 1, &fat)).expect("call");
        assert!(
            matches!(
                resp.body,
                Body::StreamError {
                    kind: fannr_serve::StreamErrorKind::Overflow,
                    ..
                }
            ),
            "{resp:?}"
        );

        // In-order segments apply and ack their own seq.
        let resp = client.call(&stream_req("s1", 1, &seg1)).expect("call");
        match resp.body {
            Body::StreamAck { seq, applied, .. } => {
                assert_eq!(seq, 1);
                assert_eq!(applied, 1);
            }
            other => panic!("expected ack, got {other:?}"),
        }
        let resp = client.call(&stream_req("s2", 2, &seg2)).expect("call");
        match resp.body {
            Body::StreamAck {
                seq,
                applied,
                epoch,
            } => {
                assert_eq!(seq, 2);
                assert_eq!(applied, 1);
                assert_eq!(epoch, 2);
            }
            other => panic!("expected ack, got {other:?}"),
        }

        // A duplicate re-acks cumulatively with nothing re-applied.
        let resp = client.call(&stream_req("dup", 1, &seg1)).expect("call");
        match resp.body {
            Body::StreamAck {
                seq,
                applied,
                epoch,
            } => {
                assert_eq!(seq, 2, "cumulative ack");
                assert_eq!(applied, 0, "duplicate must not re-apply");
                assert_eq!(epoch, 2, "duplicate must not bump the epoch");
            }
            other => panic!("expected ack, got {other:?}"),
        }

        // Stream metrics account for the two applied segments only.
        let resp = client
            .call(&Request {
                id: Some("m".into()),
                op: Op::Metrics,
            })
            .expect("metrics");
        match resp.body {
            Body::Metrics(m) => {
                assert_eq!(m.stream_segments, 2, "{m:?}");
                assert_eq!(m.stream_updates, 2, "{m:?}");
                assert_eq!(m.epoch, 2, "{m:?}");
            }
            other => panic!("expected metrics, got {other:?}"),
        }

        // Answers after the stream match a local engine fed the same
        // updates in the same order.
        mirror.apply_updates(&seg1).expect("mirror seg1");
        mirror.apply_updates(&seg2).expect("mirror seg2");
        for (id, agg) in [("q-sum", Aggregate::Sum), ("q-max", Aggregate::Max)] {
            let resp = client
                .call(&query_req(id, &p, &q, 0.5, agg))
                .expect("query");
            let expected = mirror.query(&p, &q, 0.5, agg).expect("valid query");
            match (&resp.body, expected) {
                (Body::Ok { p_star, dist, .. }, Some(ans)) => {
                    assert_eq!(*p_star, ans.p_star, "{id}");
                    assert_eq!(*dist, ans.dist, "{id}");
                }
                (Body::Empty, None) => {}
                (body, expected) => panic!("{id}: got {body:?}, expected {expected:?}"),
            }
        }
    });
}
