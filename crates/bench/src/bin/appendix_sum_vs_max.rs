//! Appendix C (full paper): running time of sum-FANN_R vs max-FANN_R for
//! the universal algorithms, given identical inputs.
//!
//! Paper claims: the two aggregates cost nearly the same — the flexible
//! subset is the k nearest query points either way; only the final
//! aggregation differs.

use fann_bench::*;
use fann_core::Aggregate;

fn main() {
    let args = Args::parse();
    let cfg = Defaults::from_args(&args);
    let env = cfg.env();
    let header: Vec<String> = ["algorithm", "max", "sum", "sum/max"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    let mut worst: f64 = 1.0;
    for (algo, gphi) in [("GD", "PHL"), ("R-List", "PHL"), ("IER-kNN", "IER-PHL")] {
        let run = |agg: Aggregate| -> Option<f64> {
            run_cell(cfg.budget, cfg.queries, |i| {
                let ctx = make_ctx(
                    &env,
                    14_000 + i as u64,
                    cfg.d,
                    cfg.m,
                    cfg.a,
                    cfg.c,
                    cfg.phi,
                    agg,
                );
                time(|| ctx.run(algo, gphi)).1
            })
        };
        let (mx, sm) = (run(Aggregate::Max), run(Aggregate::Sum));
        let ratio = match (mx, sm) {
            (Some(a), Some(b)) if a > 0.0 => {
                let r = b / a;
                worst = worst.max(r.max(1.0 / r));
                format!("{r:.2}")
            }
            _ => "-".to_string(),
        };
        rows.push(vec![
            format!("{algo}({gphi})"),
            fmt_secs(mx),
            fmt_secs(sm),
            ratio,
        ]);
    }
    print_table("Appendix C: sum vs max runtime parity", &header, &rows);
    println!(
        "[shape] worst sum/max deviation {worst:.2}x ({}; paper: very close)",
        if worst < 2.0 { "OK" } else { "WARN" }
    );
}
