//! Fig. 8: efficiency varying the flexibility parameter `phi`.
//!
//! Paper claims: clear positive correlation with `phi` (more destinations
//! to visit); the R-tree over `Q` (IER-A* vs A*) helps a lot at small
//! `phi` and little at `phi = 1`; `R-List` / `Exact-max` are affected most.

use fann_bench::*;
use fann_core::Aggregate;

fn main() {
    let args = Args::parse();
    let cfg = Defaults::from_args(&args);
    let env = cfg.env();
    let phis = [0.1, 0.3, 0.5, 0.7, 1.0];
    let points: Vec<SweepPoint> = phis
        .into_iter()
        .map(|phi| {
            let mut p = SweepPoint::defaults(&cfg, format!("{phi}"));
            p.phi = phi;
            p
        })
        .collect();
    sweep_tables(&env, &cfg, "8", "phi", &points, 8000);

    // Shape: IER-A* improvement over A* shrinks as phi -> 1.
    let cell = |gphi: &str, phi: f64| -> Option<f64> {
        run_cell(cfg.budget, cfg.queries, |i| {
            let ctx = make_ctx(
                &env,
                8600 + i as u64,
                cfg.d,
                cfg.m,
                cfg.a,
                cfg.c,
                phi,
                Aggregate::Max,
            );
            time(|| ctx.run("IER-kNN", gphi)).1
        })
    };
    let improvement = |phi: f64| -> Option<f64> {
        match (cell("A*", phi), cell("IER-A*", phi)) {
            (Some(plain), Some(ier)) if ier > 0.0 => Some(plain / ier),
            _ => None,
        }
    };
    if let (Some(low), Some(high)) = (improvement(0.1), improvement(1.0)) {
        println!(
            "[shape] IER speedup over A*: phi=0.1 -> {low:.2}x, phi=1.0 -> {high:.2}x ({})",
            if low >= high {
                "OK: R-tree on Q helps most at small phi"
            } else {
                "WARN"
            }
        );
    }
}
