//! `loadgen` — open-loop load generator for `fannr serve`.
//!
//! Regenerates the same synthetic network as the server (`--nodes`,
//! `--seed` must match the `fannr serve` invocation) so it can produce
//! valid query workloads, then drives the server at a fixed arrival rate
//! and reports achieved QPS, shed rate, and client-observed p50/p90/p99.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7878 --nodes 10000 --seed 7 \
//!         --rate 200 --duration-s 10 --conns 2 [--deadline-ms 50] [--shutdown]
//! loadgen --addr 127.0.0.1:7878 --nodes 2000 --seed 7 --smoke
//! loadgen --addr 127.0.0.1:7878 --nodes 2000 --seed 7 --smoke \
//!         --update-rate 20 --bench-out results/BENCH_5.json
//! ```
//!
//! Open loop means the send schedule never adapts to response latency —
//! requests go out on their ticks whether or not earlier ones have been
//! answered, which is what exposes queueing and shedding behaviour.
//!
//! `--smoke` is the CI mode: sequential queries cross-validated against a
//! local [`Engine`], a forced-cancellation probe, a metrics check, and a
//! clean wire shutdown. Exit code 0 means ≥1 success, 0 wrong answers,
//! and an orderly drain.
//!
//! `--update-rate R` adds a live-mutation leg: a dedicated connection
//! toggles one edge's weight at `R` updates/second (between its seed
//! value and double it — always admissible) while queries keep flowing.
//! In smoke mode the final update restores the seed weight, the client
//! waits for the server's background label repair to converge, and then
//! re-cross-validates against the local engine — so a wrong answer in the
//! staleness window fails the run. `--bench-out FILE` writes a small JSON
//! summary (qps, updates, latency quantiles) for CI artifacts.
//!
//! `--skew` swaps the workload for the skewed clustered-Q profile (a hot
//! set of repeated queries with spatially clustered `Q`, re-spelled per
//! request), and `--compare-addr ADDR2` runs the query-locality
//! comparison: the same skewed workload through a cache-off server
//! (`--addr`) and a cache-on server (`ADDR2`), every answer from both
//! cross-validated against a local engine, reporting the client-observed
//! throughput ratio (`--min-speedup X` turns it into a pass/fail gate):
//!
//! ```text
//! loadgen --addr 127.0.0.1:7880 --compare-addr 127.0.0.1:7881 \
//!         --nodes 2000 --seed 7 --skew --smoke --queries 256 \
//!         --min-speedup 5 --shutdown --bench-out results/BENCH_6.json
//! ```
//!
//! `--update-stream` swaps queries for a sustained `update_stream` leg:
//! one long-lived sequenced stream (segments of `--segment` edges paced
//! to `--rate` updates/second, a bounded in-flight window), checkpointed
//! reads cross-validated bit-for-bit against a local mirror engine, and a
//! final single-edge probe that reads the server's scoped-repair counters
//! (`--min-updates-per-s` and `--min-repair-ratio` turn both into
//! pass/fail gates; `--converge-s` stretches the per-checkpoint repair
//! deadline for continental graphs whose merged scopes repair for
//! minutes):
//!
//! ```text
//! loadgen --addr 127.0.0.1:7893 --update-stream --nodes 2000 --seed 7 \
//!         --rate 2000 --duration-s 4 --segment 64 --min-updates-per-s 1000 \
//!         --min-repair-ratio 10 --shutdown --bench-out results/BENCH_10.json
//! ```
//!
//! `--router` drives a partitioned deployment: every answer through the
//! shard router (`--addr`) is cross-validated bit-for-bit against a local
//! engine, per-shard balance comes from each shard's own metrics
//! (`--shard-addrs a:p,b:p`), and the router's metrics supply the
//! shards-pruned rate. `--single-addr` adds an unpartitioned comparison
//! leg:
//!
//! ```text
//! loadgen --addr 127.0.0.1:7893 --router --nodes 2000 --seed 7 \
//!         --shard-addrs 127.0.0.1:7890,127.0.0.1:7891 \
//!         --single-addr 127.0.0.1:7892 --queries 128 \
//!         --shutdown --bench-out results/BENCH_9.json
//! ```

use std::collections::{HashMap, VecDeque};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use fann_core::engine::Engine;
use fann_core::metrics::LatencyHistogram;
use fann_core::Aggregate;
use fannr_serve::{Body, Client, Op, QuerySpec, Request, MAX_STREAM_SEGMENT, STREAM_WINDOW};
use roadnet::{Graph, WeightUpdate};

fn parse_opts(args: impl Iterator<Item = String>) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut it = args.peekable();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            let val = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().expect("peeked"),
                _ => "true".to_string(),
            };
            map.insert(key.to_string(), val);
        }
    }
    map
}

fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    opts.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A fixed pool of valid (P, Q, phi, agg) workloads, cycled round-robin.
struct QueryPool {
    specs: Vec<QuerySpec>,
}

impl QueryPool {
    fn generate(graph: &Graph, seed: u64, size: usize, deadline_ms: Option<u64>) -> QueryPool {
        let mut rng = workload::rng(seed.wrapping_add(0x10adc0de));
        let specs = (0..size)
            .map(|i| {
                let p = workload::points::uniform_data_points(graph, 0.01, &mut rng);
                let q = workload::points::uniform_query_points(graph, 4 + i % 8, 0.5, &mut rng);
                QuerySpec {
                    p,
                    q,
                    phi: [0.25, 0.5, 0.75, 1.0][i % 4],
                    agg: if i % 2 == 0 {
                        Aggregate::Max
                    } else {
                        Aggregate::Sum
                    },
                    deadline_ms,
                }
            })
            .collect();
        QueryPool { specs }
    }

    /// The skewed clustered-Q profile (`--skew`): a small hot set of
    /// distinct queries with spatially clustered `Q`, repeated zipf-ishly
    /// and re-spelled (rotated member order) per slot — the shape of
    /// commute-corridor traffic. Canonical cache keys must land every
    /// spelling of a hot query on one entry.
    fn generate_skewed(
        graph: &Graph,
        seed: u64,
        size: usize,
        deadline_ms: Option<u64>,
    ) -> QueryPool {
        let mut rng = workload::rng(seed.wrapping_add(0x5be3d));
        let hot: Vec<QuerySpec> = (0..SKEW_HOT_SET)
            .map(|i| {
                let p = workload::points::uniform_data_points(graph, 0.01, &mut rng);
                let q =
                    workload::points::clustered_query_points(graph, 6 + 2 * i, 0.2, 2, &mut rng);
                QuerySpec {
                    p,
                    q,
                    phi: [0.25, 0.5, 1.0][i % 3],
                    agg: if i % 2 == 0 {
                        Aggregate::Max
                    } else {
                        Aggregate::Sum
                    },
                    deadline_ms,
                }
            })
            .collect();
        let specs = (0..size)
            .map(|s| {
                // Skewed pick: half the slots hit hot[0], a quarter hot[1],
                // the tail spreads over the rest.
                let j = match s % 16 {
                    0..=7 => 0,
                    8..=11 => 1,
                    12 | 13 => 2,
                    _ => 3 + s % (SKEW_HOT_SET - 3),
                };
                let mut spec = hot[j].clone();
                // A different spelling of the same set per slot.
                let len = spec.q.len().max(1);
                spec.q.rotate_left(s % len);
                spec
            })
            .collect();
        QueryPool { specs }
    }

    fn spec(&self, i: usize) -> &QuerySpec {
        &self.specs[i % self.specs.len()]
    }
}

/// Distinct hot queries in the `--skew` profile.
const SKEW_HOT_SET: usize = 6;

/// Connect with retries so loadgen can be launched alongside the server.
fn connect_with_retry(addr: &str, budget: Duration) -> Result<Client, String> {
    let start = Instant::now();
    loop {
        match Client::connect(addr) {
            Ok(c) => return Ok(c),
            Err(e) if start.elapsed() < budget => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(200));
            }
            Err(e) => return Err(format!("connect {addr}: {e}")),
        }
    }
}

/// The edge the updater leg toggles: the first edge of node 0. Doubling a
/// weight is always admissible (weights may only move *up* from the
/// Euclidean floor), and restoring the seed value leaves the network
/// identical to what a fresh `Engine::new(graph)` sees.
fn mutation_edge(graph: &Graph) -> Result<(u32, u32, u32), String> {
    graph
        .neighbors(0)
        .next()
        .map(|(v, w)| (0, v, w))
        .ok_or_else(|| "node 0 has no edges; cannot run the update leg".to_string())
}

/// Updater leg: its own connection, one single-edge `update` per tick,
/// toggling between `2*w0` and `w0`. Always finishes on a restore of `w0`
/// (if it sent anything at all) and returns `(updates_sent, last_epoch)`.
fn updater_loop(
    addr: &str,
    (u, v, w0): (u32, u32, u32),
    rate: f64,
    stop: &AtomicBool,
) -> Result<(u64, u64), String> {
    let mut client = connect_with_retry(addr, Duration::from_secs(20))?;
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let interval = Duration::from_secs_f64(1.0 / rate.max(0.001));
    let mut send = |seq: u64, w: u32| -> Result<u64, String> {
        let resp = client
            .call(&Request {
                id: Some(format!("u{seq}")),
                op: Op::Update(vec![WeightUpdate { u, v, w }]),
            })
            .map_err(|e| format!("update {seq}: {e}"))?;
        match resp.body {
            Body::Updated { epoch, .. } => Ok(epoch),
            other => Err(format!("update {seq} rejected: {other:?}")),
        }
    };
    let mut seq = 0u64;
    let mut epoch = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let w = if seq.is_multiple_of(2) {
            w0.saturating_mul(2)
        } else {
            w0
        };
        epoch = send(seq, w)?;
        seq += 1;
        std::thread::sleep(interval);
    }
    if seq % 2 == 1 {
        // The last applied weight was the doubled one; restore the seed.
        epoch = send(seq, w0)?;
        seq += 1;
    }
    Ok((seq, epoch))
}

fn main() -> ExitCode {
    let opts = parse_opts(std::env::args().skip(1));
    let addr: String = opts
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let nodes: usize = get(&opts, "nodes", 10_000);
    let seed: u64 = get(&opts, "seed", 7);
    let deadline_ms: Option<u64> = opts.get("deadline-ms").and_then(|v| v.parse().ok());

    eprintln!("loadgen: regenerating network ({nodes} nodes, seed {seed})");
    let graph = workload::synth::road_network(nodes, &mut workload::rng(seed));
    let pool = if opts.contains_key("skew") {
        QueryPool::generate_skewed(&graph, seed, 64, deadline_ms)
    } else {
        QueryPool::generate(&graph, seed, 32, deadline_ms)
    };

    let update_rate: f64 = get(&opts, "update-rate", 0.0);
    let bench_out = opts.get("bench-out").cloned();

    let result = if opts.contains_key("update-stream") {
        stream_leg(
            &addr,
            &graph,
            &pool,
            StreamOpts {
                rate: get(&opts, "rate", 2_000.0),
                seconds: get(&opts, "duration-s", 5.0),
                segment: get(&opts, "segment", 64usize),
                checkpoints: get(&opts, "checkpoints", 4usize),
                min_updates_per_s: get(&opts, "min-updates-per-s", 0.0),
                min_repair_ratio: get(&opts, "min-repair-ratio", 0.0),
                converge_s: get(&opts, "converge-s", 60u64),
                shutdown: opts.contains_key("shutdown"),
            },
            bench_out.as_deref(),
        )
    } else if opts.contains_key("router") {
        router_leg(
            &addr,
            opts.get("single-addr").map(String::as_str),
            opts.get("shard-addrs").map(String::as_str).unwrap_or(""),
            &graph,
            &pool,
            get(&opts, "queries", 128usize),
            opts.contains_key("shutdown"),
            bench_out.as_deref(),
        )
    } else if let Some(cached_addr) = opts.get("compare-addr") {
        compare(
            &addr,
            cached_addr,
            &graph,
            &pool,
            get(&opts, "queries", 256usize),
            get(&opts, "pipeline", 32usize),
            get(&opts, "min-speedup", 0.0),
            opts.contains_key("shutdown"),
            bench_out.as_deref(),
        )
    } else if opts.contains_key("smoke") {
        smoke(&addr, &graph, &pool, update_rate, bench_out.as_deref())
    } else {
        open_loop(
            &addr,
            &graph,
            &pool,
            get(&opts, "rate", 100.0),
            Duration::from_secs_f64(get(&opts, "duration-s", 5.0)),
            get(&opts, "conns", 1usize),
            update_rate,
            opts.contains_key("shutdown"),
        )
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadgen: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

/// CI smoke: bounded, deterministic, verifies answers against a local
/// engine and finishes with a clean wire shutdown. With `update_rate > 0`
/// a live-mutation leg runs between two cross-validated phases.
fn smoke(
    addr: &str,
    graph: &Graph,
    pool: &QueryPool,
    update_rate: f64,
    bench_out: Option<&str>,
) -> Result<(), String> {
    let engine = Engine::new(graph);
    let mut client = connect_with_retry(addr, Duration::from_secs(20))?;
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;

    // The server must be alive and not draining.
    let resp = client
        .call(&Request {
            id: Some("h".into()),
            op: Op::Health,
        })
        .map_err(|e| format!("health: {e}"))?;
    match resp.body {
        Body::Health(h) if !h.draining => {}
        other => return Err(format!("unhealthy server: {other:?}")),
    }

    // Sequential queries, each cross-validated against the local engine.
    let (mut ok, mut empty) = cross_validate(&mut client, &engine, pool, 16, "s")?;
    if ok == 0 {
        return Err("no query succeeded".to_string());
    }

    // Live-mutation leg: an updater connection toggles one edge while this
    // connection keeps querying. Mid-flight answers can't be compared to
    // the static local engine (the weights are moving), so here we only
    // require that every query is *answered* — zero shed, zero cancelled,
    // zero errors attributable to the swap — and validate exactness after
    // the final restore below.
    let mut mixed = MixedStats::default();
    if update_rate > 0.0 {
        let edge = mutation_edge(graph)?;
        let stop = AtomicBool::new(false);
        let t0 = Instant::now();
        let (sent_updates, last_epoch) = std::thread::scope(|scope| {
            let updater = scope.spawn(|| updater_loop(addr, edge, update_rate, &stop));
            let run = (|| -> Result<(), String> {
                for i in 0..MIXED_QUERIES {
                    let spec = pool.spec(i).clone();
                    let req = Request {
                        id: Some(format!("m{i}")),
                        op: Op::Query(QuerySpec {
                            deadline_ms: None,
                            ..spec
                        }),
                    };
                    let sent = Instant::now();
                    let resp = client
                        .call(&req)
                        .map_err(|e| format!("mixed query {i}: {e}"))?;
                    match resp.body {
                        Body::Ok { .. } => mixed.ok += 1,
                        Body::Empty => mixed.empty += 1,
                        other => {
                            return Err(format!(
                                "mixed query {i} not answered (got {other:?}); \
                                 updates must never shed or fail reads"
                            ))
                        }
                    }
                    mixed.latency.record(sent.elapsed());
                }
                Ok(())
            })();
            stop.store(true, Ordering::Relaxed);
            let upd = updater.join().expect("updater thread");
            run.and(upd)
        })?;
        mixed.elapsed = t0.elapsed();
        mixed.updates = sent_updates;
        mixed.epoch = last_epoch;
        if sent_updates == 0 {
            return Err("update leg sent no updates (rate too low for the run)".to_string());
        }
        eprintln!(
            "loadgen: mixed leg: {} queries with {} live updates ({} epochs), all answered",
            mixed.ok + mixed.empty,
            sent_updates,
            last_epoch
        );

        // The final update restored the seed weight, so once the server's
        // background repair converges the local engine is authoritative
        // again. `stale` only clears for label-backed servers, but answers
        // are exact either way — the wait just exercises the repair path.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let resp = client
                .call(&Request {
                    id: Some("h2".into()),
                    op: Op::Health,
                })
                .map_err(|e| format!("health during repair: {e}"))?;
            match resp.body {
                Body::Health(h) if h.epoch == last_epoch && !h.stale => break,
                Body::Health(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                other => return Err(format!("label repair never converged: {other:?}")),
            }
        }
        let (ok2, empty2) = cross_validate(&mut client, &engine, pool, 8, "r")?;
        if ok2 == 0 {
            return Err("no post-update query succeeded".to_string());
        }
        ok += ok2;
        empty += empty2;
    }

    // A pre-expired deadline must cancel, never answer wrongly.
    let spec = pool.spec(0).clone();
    let resp = client
        .call(&Request {
            id: Some("doomed".into()),
            op: Op::Query(QuerySpec {
                deadline_ms: Some(0),
                ..spec
            }),
        })
        .map_err(|e| format!("deadline probe: {e}"))?;
    if resp.body != Body::Cancelled {
        return Err(format!("expected cancelled for 0ms deadline, got {resp:?}"));
    }

    // Metrics must reflect the traffic we just generated.
    let resp = client
        .call(&Request {
            id: None,
            op: Op::Metrics,
        })
        .map_err(|e| format!("metrics: {e}"))?;
    match resp.body {
        Body::Metrics(m) if m.ok >= ok && m.cancelled >= 1 && m.updates >= mixed.updates => {
            eprintln!(
                "loadgen: server metrics: {} admitted, {} ok, {} cancelled, {} shed, \
                 {} updates (epoch {})",
                m.requests, m.ok, m.cancelled, m.shed, m.updates, m.epoch
            );
        }
        other => return Err(format!("inconsistent metrics: {other:?}")),
    }

    if let Some(path) = bench_out {
        write_bench_json(path, &mixed)?;
    }

    // Clean drain over the wire.
    let resp = client
        .call(&Request {
            id: Some("bye".into()),
            op: Op::Shutdown,
        })
        .map_err(|e| format!("shutdown: {e}"))?;
    if resp.body != Body::Bye {
        return Err(format!("expected bye, got {resp:?}"));
    }

    println!(
        "SMOKE PASS: {ok} ok, {empty} empty, {} live updates, 0 wrong answers, clean drain",
        mixed.updates
    );
    Ok(())
}

/// One answered wire query, reduced to the bits that must match:
/// `None` for `empty`, else `(p_star, dist, subset)`.
type WireAnswer = Option<(u32, u64, Vec<u32>)>;

/// The query-locality bench/smoke (`--compare-addr`): drive the *same*
/// workload through a cache-off server (`--addr`) and a cache-on server
/// (`--compare-addr`), in pipelined chunks (so the batching window sees
/// co-located company), cross-validate every answer from both servers
/// against a local [`Engine`], and report the client-observed throughput
/// ratio. Zero mismatches are mandatory; `--min-speedup X` makes the run
/// fail below `X`. `--bench-out FILE` records the comparison
/// (`results/BENCH_6.json` in CI).
#[allow(clippy::too_many_arguments)]
fn compare(
    base_addr: &str,
    cached_addr: &str,
    graph: &Graph,
    pool: &QueryPool,
    queries: usize,
    chunk: usize,
    min_speedup: f64,
    send_shutdown: bool,
    bench_out: Option<&str>,
) -> Result<(), String> {
    let engine = Engine::new(graph);
    let chunk = chunk.max(1);

    // One pipelined, chunked leg against one server.
    let run_leg =
        |addr: &str, tag: &str| -> Result<(Vec<WireAnswer>, Duration, LatencyHistogram), String> {
            let mut client = connect_with_retry(addr, Duration::from_secs(20))?;
            client
                .set_read_timeout(Some(Duration::from_secs(30)))
                .map_err(|e| e.to_string())?;
            let resp = client
                .call(&Request {
                    id: Some(format!("{tag}-h")),
                    op: Op::Health,
                })
                .map_err(|e| format!("health {addr}: {e}"))?;
            match resp.body {
                Body::Health(h) if !h.draining => {}
                other => return Err(format!("unhealthy server {addr}: {other:?}")),
            }
            let mut answers: Vec<WireAnswer> = vec![None; queries];
            let mut got: Vec<bool> = vec![false; queries];
            let mut hist = LatencyHistogram::default();
            let started = Instant::now();
            let mut next = 0usize;
            while next < queries {
                let end = (next + chunk).min(queries);
                let chunk_sent = Instant::now();
                for i in next..end {
                    client
                        .send(&Request {
                            id: Some(format!("{tag}{i}")),
                            op: Op::Query(pool.spec(i).clone()),
                        })
                        .map_err(|e| format!("send {tag}{i}: {e}"))?;
                }
                for _ in next..end {
                    let resp = client.recv().map_err(|e| format!("recv {tag}: {e}"))?;
                    let Some(i) = resp
                        .id
                        .as_deref()
                        .and_then(|id| id.strip_prefix(tag))
                        .and_then(|n| n.parse::<usize>().ok())
                    else {
                        return Err(format!("unmatched response id {:?}", resp.id));
                    };
                    match resp.body {
                        Body::Ok {
                            p_star,
                            dist,
                            subset,
                            ..
                        } => answers[i] = Some((p_star, dist, subset)),
                        Body::Empty => answers[i] = None,
                        other => {
                            return Err(format!(
                                "{tag}{i} not answered (got {other:?}); the compare leg \
                             must see every query through"
                            ))
                        }
                    }
                    got[i] = true;
                    hist.record(chunk_sent.elapsed());
                }
                next = end;
            }
            if !got.iter().all(|&g| g) {
                return Err("responses missing after drain".to_string());
            }
            Ok((answers, started.elapsed(), hist))
        };

    let (base_answers, base_elapsed, base_hist) = run_leg(base_addr, "b")?;
    let (cached_answers, cached_elapsed, cached_hist) = run_leg(cached_addr, "c")?;

    // Both servers, bit-for-bit, against the local engine.
    let mut mismatches = 0usize;
    for i in 0..queries {
        let spec = pool.spec(i);
        let want: WireAnswer = engine
            .query(&spec.p, &spec.q, spec.phi, spec.agg)
            .map_err(|e| format!("local engine rejected query {i}: {e}"))?
            .map(|a| (a.p_star, a.dist, a.subset));
        for (leg, got) in [
            ("uncached", &base_answers[i]),
            ("cached", &cached_answers[i]),
        ] {
            if *got != want {
                mismatches += 1;
                eprintln!("loadgen: MISMATCH on query {i} ({leg}): got {got:?}, expected {want:?}");
            }
        }
    }

    let base_qps = queries as f64 / base_elapsed.as_secs_f64().max(1e-9);
    let cached_qps = queries as f64 / cached_elapsed.as_secs_f64().max(1e-9);
    let speedup = cached_qps / base_qps.max(1e-9);
    println!(
        "compare: {queries} skewed queries | uncached {base_qps:.0} qps | \
         cached {cached_qps:.0} qps | speedup {speedup:.1}x | {mismatches} mismatches"
    );

    // The cached server's own accounting, for the record.
    let mut cached_client = connect_with_retry(cached_addr, Duration::from_secs(5))?;
    let resp = cached_client
        .call(&Request {
            id: None,
            op: Op::Metrics,
        })
        .map_err(|e| format!("metrics {cached_addr}: {e}"))?;
    let m = match resp.body {
        Body::Metrics(m) => *m,
        other => return Err(format!("expected metrics, got {other:?}")),
    };
    eprintln!(
        "loadgen: cached server: {} hits, {} misses, {} insertions, {} batches ({} batched queries)",
        m.cache_hits, m.cache_misses, m.cache_insertions, m.batches, m.batch_queries
    );

    if let Some(path) = bench_out {
        let json = format!(
            "{{\n  \"profile\": \"skewed-clustered-q\",\n  \"queries\": {queries},\n  \
             \"distinct_hot\": {SKEW_HOT_SET},\n  \"uncached_qps\": {base_qps:.1},\n  \
             \"cached_qps\": {cached_qps:.1},\n  \"speedup\": {speedup:.1},\n  \
             \"mismatches\": {mismatches},\n  \"uncached_p50_us\": {},\n  \
             \"cached_p50_us\": {},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
             \"batches\": {},\n  \"batch_queries\": {}\n}}\n",
            base_hist.p50_ns() / 1_000,
            cached_hist.p50_ns() / 1_000,
            m.cache_hits,
            m.cache_misses,
            m.batches,
            m.batch_queries,
        );
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| format!("{path}: {e}"))?;
            }
        }
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("loadgen: wrote {path}");
    }

    if send_shutdown {
        for addr in [base_addr, cached_addr] {
            let mut client = connect_with_retry(addr, Duration::from_secs(5))?;
            client
                .call(&Request {
                    id: None,
                    op: Op::Shutdown,
                })
                .map_err(|e| format!("shutdown {addr}: {e}"))?;
        }
    }

    if mismatches > 0 {
        return Err(format!("{mismatches} answer mismatches"));
    }
    if speedup < min_speedup {
        return Err(format!(
            "speedup {speedup:.1}x below required {min_speedup:.1}x"
        ));
    }
    println!(
        "COMPARE PASS: {queries} queries, 0 mismatches, {speedup:.1}x client-observed speedup"
    );
    Ok(())
}

/// The partitioned-deployment leg (`--router`): drive the workload
/// through the shard router (`--addr`), cross-validate every answer
/// bit-for-bit against a local [`Engine`] (the router must be
/// indistinguishable from one server), and report the routing economics —
/// per-shard request balance (via each shard's own metrics, reached
/// directly through `--shard-addrs`) and the shards-pruned rate from the
/// router's metrics. With `--single-addr` the same workload also runs
/// through an unpartitioned server for a throughput ratio. `--bench-out`
/// records everything (`results/BENCH_9.json` in CI).
#[allow(clippy::too_many_arguments)]
fn router_leg(
    router_addr: &str,
    single_addr: Option<&str>,
    shard_addrs: &str,
    graph: &Graph,
    pool: &QueryPool,
    queries: usize,
    send_shutdown: bool,
    bench_out: Option<&str>,
) -> Result<(), String> {
    let engine = Engine::new(graph);

    // One sequential, timed, cross-validated leg against one address.
    let run_leg = |addr: &str, tag: &str| -> Result<(u64, u64, f64, LatencyHistogram), String> {
        let mut client = connect_with_retry(addr, Duration::from_secs(20))?;
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| e.to_string())?;
        let mut hist = LatencyHistogram::default();
        let mut ok = 0u64;
        let mut empty = 0u64;
        let started = Instant::now();
        for i in 0..queries {
            let spec = pool.spec(i).clone();
            let want = engine
                .query(&spec.p, &spec.q, spec.phi, spec.agg)
                .map_err(|e| format!("local engine rejected query {tag}{i}: {e}"))?;
            let sent = Instant::now();
            let resp = client
                .call(&Request {
                    id: Some(format!("{tag}{i}")),
                    op: Op::Query(QuerySpec {
                        deadline_ms: None,
                        ..spec
                    }),
                })
                .map_err(|e| format!("query {tag}{i}: {e}"))?;
            hist.record(sent.elapsed());
            match (&resp.body, &want) {
                (
                    Body::Ok {
                        p_star,
                        dist,
                        subset,
                        ..
                    },
                    Some(w),
                ) if *p_star == w.p_star && *dist == w.dist && *subset == w.subset => ok += 1,
                (Body::Empty, None) => empty += 1,
                (body, want) => {
                    return Err(format!(
                        "MISMATCH on query {tag}{i} via {addr}: got {body:?}, expected {want:?}"
                    ))
                }
            }
        }
        let qps = queries as f64 / started.elapsed().as_secs_f64().max(1e-9);
        Ok((ok, empty, qps, hist))
    };

    let (ok, empty, router_qps, router_hist) = run_leg(router_addr, "r")?;
    if ok == 0 {
        return Err("no query succeeded through the router".to_string());
    }
    let single = match single_addr {
        Some(addr) => Some(run_leg(addr, "s")?),
        None => None,
    };

    // The router's own routing economics.
    let mut client = connect_with_retry(router_addr, Duration::from_secs(5))?;
    let resp = client
        .call(&Request {
            id: None,
            op: Op::Metrics,
        })
        .map_err(|e| format!("router metrics: {e}"))?;
    let rm = match resp.body {
        Body::Metrics(m) => *m,
        other => return Err(format!("expected router metrics, got {other:?}")),
    };
    let planned = rm.shards_contacted + rm.shards_pruned;
    let pruned_rate = rm.shards_pruned as f64 / planned.max(1) as f64;

    // Per-shard balance straight from each shard's own counters.
    let mut per_shard: Vec<u64> = Vec::new();
    for addr in shard_addrs.split(',').filter(|a| !a.trim().is_empty()) {
        let mut sc = connect_with_retry(addr.trim(), Duration::from_secs(5))?;
        let resp = sc
            .call(&Request {
                id: None,
                op: Op::Metrics,
            })
            .map_err(|e| format!("shard metrics {addr}: {e}"))?;
        match resp.body {
            Body::Metrics(m) => per_shard.push(m.requests),
            other => return Err(format!("expected shard metrics from {addr}, got {other:?}")),
        }
    }
    let balance = match (per_shard.iter().min(), per_shard.iter().max()) {
        (Some(&lo), Some(&hi)) if hi > 0 => lo as f64 / hi as f64,
        _ => 0.0,
    };

    println!(
        "router: {queries} queries ({ok} ok, {empty} empty), 0 mismatches | {:.0} qps | \
         {} shards contacted, {} pruned ({:.0}% pruned) | per-shard {:?} (balance {:.2})",
        router_qps,
        rm.shards_contacted,
        rm.shards_pruned,
        100.0 * pruned_rate,
        per_shard,
        balance,
    );
    let (single_qps, single_p50_us) = match &single {
        Some((sok, sempty, qps, hist)) => {
            println!(
                "single: {queries} queries ({sok} ok, {sempty} empty), 0 mismatches | {qps:.0} qps \
                 | router/single {:.2}x",
                router_qps / qps.max(1e-9)
            );
            (*qps, hist.p50_ns() / 1_000)
        }
        None => (0.0, 0),
    };

    if let Some(path) = bench_out {
        let shard_list = per_shard
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let json = format!(
            "{{\n  \"bench\": \"router\",\n  \"queries\": {queries},\n  \"shards\": {},\n  \
             \"mismatches\": 0,\n  \"router_qps\": {router_qps:.1},\n  \
             \"single_qps\": {single_qps:.1},\n  \"router_p50_us\": {},\n  \
             \"single_p50_us\": {single_p50_us},\n  \"shards_contacted\": {},\n  \
             \"shards_pruned\": {},\n  \"pruned_rate\": {pruned_rate:.3},\n  \
             \"per_shard_requests\": [{shard_list}],\n  \"balance\": {balance:.3}\n}}\n",
            per_shard.len(),
            router_hist.p50_ns() / 1_000,
            rm.shards_contacted,
            rm.shards_pruned,
        );
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| format!("{path}: {e}"))?;
            }
        }
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("loadgen: wrote {path}");
    }

    if send_shutdown {
        // One shutdown to the router drains the whole deployment; the
        // single-process comparison server needs its own.
        client
            .call(&Request {
                id: None,
                op: Op::Shutdown,
            })
            .map_err(|e| format!("shutdown {router_addr}: {e}"))?;
        if let Some(addr) = single_addr {
            let mut sc = connect_with_retry(addr, Duration::from_secs(5))?;
            sc.call(&Request {
                id: None,
                op: Op::Shutdown,
            })
            .map_err(|e| format!("shutdown {addr}: {e}"))?;
        }
    }
    println!(
        "ROUTER PASS: {queries} queries, 0 mismatches, {:.0}% of shard contacts pruned",
        100.0 * pruned_rate
    );
    Ok(())
}

/// Knobs for the sustained update-stream leg (`--update-stream`).
struct StreamOpts {
    /// Target updates/second (segments are paced to hit this).
    rate: f64,
    /// How long the sustained phase streams for.
    seconds: f64,
    /// Edges per segment.
    segment: usize,
    /// How many times the stream pauses for a checkpointed read phase.
    checkpoints: usize,
    /// Fail below this achieved updates/second (0 = no gate).
    min_updates_per_s: f64,
    /// Fail unless the final single-edge repair touched at least this
    /// many times fewer label roots than a full rebuild (0 = no gate).
    min_repair_ratio: f64,
    /// Per-checkpoint repair-convergence deadline, seconds. The default
    /// (60) fits CI-sized graphs; continental runs merging many touched
    /// edges into one scope legitimately repair for minutes.
    converge_s: u64,
    shutdown: bool,
}

/// The sustained update-stream leg (`--update-stream`): one long-lived
/// `update_stream` over a single connection, segments of `--segment`
/// edges paced to `--rate` updates/second with up to [`STREAM_WINDOW`]
/// segments in flight. Every ack is applied to a local mirror engine;
/// the stream periodically drains, waits for the server's background
/// repair to converge, and cross-validates reads bit-for-bit against the
/// mirror (the checkpoint pattern — mid-flight answers race the stream,
/// checkpointed ones must be exact). A final single-edge segment probes
/// the scoped-repair footprint: the server's last-repair counters then
/// show how many label roots and G-tree leaves one edge actually costs
/// versus a full rebuild. `--bench-out` records everything
/// (`results/BENCH_10.json` in CI).
fn stream_leg(
    addr: &str,
    graph: &Graph,
    pool: &QueryPool,
    opts: StreamOpts,
    bench_out: Option<&str>,
) -> Result<(), String> {
    let mirror = Engine::new(graph);
    let segment = opts.segment.clamp(1, MAX_STREAM_SEGMENT);
    let window = STREAM_WINDOW.max(1);

    // The mutated edge set: `segment` edges spread evenly over the
    // network, each toggled between its seed weight and double it (always
    // admissible — weights only move up from the Euclidean floor).
    let all: Vec<(u32, u32, u32)> = graph.edges().collect();
    if all.is_empty() {
        return Err("graph has no edges to stream updates for".to_string());
    }
    let step = (all.len() / segment).max(1);
    let edges: Vec<(u32, u32, u32)> = all.iter().copied().step_by(step).take(segment).collect();
    let batch = |doubled: bool| -> Vec<WeightUpdate> {
        edges
            .iter()
            .map(|&(u, v, w)| WeightUpdate {
                u,
                v,
                w: if doubled { w.saturating_mul(2) } else { w },
            })
            .collect()
    };

    let mut client = connect_with_retry(addr, Duration::from_secs(20))?;
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let mut query_client = connect_with_retry(addr, Duration::from_secs(20))?;
    query_client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;

    let mut next_seq: u64 = 1;
    let mut last_epoch: u64 = 0;
    let mut updates_acked: u64 = 0;
    let mut ack_hist = LatencyHistogram::default();
    let mut pending: VecDeque<(u64, Instant, Vec<WeightUpdate>)> = VecDeque::new();

    // One ack off the wire: strictly ordered, applied to the mirror the
    // moment the server confirms it.
    let recv_ack = |client: &mut Client,
                    pending: &mut VecDeque<(u64, Instant, Vec<WeightUpdate>)>,
                    ack_hist: &mut LatencyHistogram,
                    last_epoch: &mut u64,
                    updates_acked: &mut u64|
     -> Result<(), String> {
        let (seq, sent_at, updates) = pending.pop_front().expect("recv with nothing in flight");
        let resp = client.recv().map_err(|e| format!("ack {seq}: {e}"))?;
        match resp.body {
            Body::StreamAck {
                seq: acked,
                epoch,
                applied,
            } => {
                if acked != seq {
                    return Err(format!("ack out of order: expected {seq}, got {acked}"));
                }
                ack_hist.record(sent_at.elapsed());
                *last_epoch = epoch;
                *updates_acked += applied;
                mirror
                    .apply_updates(&updates)
                    .map_err(|e| format!("mirror diverged on segment {seq}: {e}"))?;
                Ok(())
            }
            other => Err(format!("segment {seq} rejected: {other:?}")),
        }
    };
    let send_segment = |client: &mut Client,
                        pending: &mut VecDeque<(u64, Instant, Vec<WeightUpdate>)>,
                        next_seq: &mut u64,
                        updates: Vec<WeightUpdate>|
     -> Result<(), String> {
        let seq = *next_seq;
        client
            .send(&Request {
                id: Some(format!("seg{seq}")),
                op: Op::UpdateStream {
                    seq,
                    updates: updates.clone(),
                },
            })
            .map_err(|e| format!("send segment {seq}: {e}"))?;
        pending.push_back((seq, Instant::now(), updates));
        *next_seq = seq + 1;
        Ok(())
    };

    // Wait for the server's background repair to converge on the acked
    // epoch, returning how long it took (the staleness window a reader
    // would have observed).
    let converge = |client: &mut Client, epoch: u64| -> Result<Duration, String> {
        let started = Instant::now();
        let deadline = started + Duration::from_secs(opts.converge_s);
        loop {
            let resp = client
                .call(&Request {
                    id: Some("cvg".into()),
                    op: Op::Health,
                })
                .map_err(|e| format!("health during convergence: {e}"))?;
            match resp.body {
                Body::Health(h) if h.epoch == epoch && !h.stale => return Ok(started.elapsed()),
                Body::Health(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                other => return Err(format!("repair never converged: {other:?}")),
            }
        }
    };

    // Sustained phase: paced segments, a bounded in-flight window, and
    // `checkpoints` pauses that each drain + converge + cross-validate.
    let total_segments =
        (((opts.rate * opts.seconds) / segment as f64).ceil() as usize).max(opts.checkpoints + 1);
    let interval = Duration::from_secs_f64(segment as f64 / opts.rate.max(1.0));
    let per_phase = total_segments.div_ceil(opts.checkpoints.max(1));
    let mut staleness = LatencyHistogram::default();
    let mut sent_segments = 0usize;
    let mut checkpoint_queries = 0u64;
    let mut streaming = Duration::ZERO;
    while sent_segments < total_segments {
        let phase_end = (sent_segments + per_phase).min(total_segments);
        let t0 = Instant::now();
        while sent_segments < phase_end {
            let tick = interval.mul_f64((sent_segments % per_phase) as f64);
            if let Some(sleep) = tick.checked_sub(t0.elapsed()) {
                std::thread::sleep(sleep);
            }
            while pending.len() >= window as usize {
                recv_ack(
                    &mut client,
                    &mut pending,
                    &mut ack_hist,
                    &mut last_epoch,
                    &mut updates_acked,
                )?;
            }
            // Odd seq doubles the weights, even seq restores them, so the
            // stream always ends on seed weights after an even count.
            let doubled = next_seq % 2 == 1;
            send_segment(&mut client, &mut pending, &mut next_seq, batch(doubled))?;
            sent_segments += 1;
        }
        while !pending.is_empty() {
            recv_ack(
                &mut client,
                &mut pending,
                &mut ack_hist,
                &mut last_epoch,
                &mut updates_acked,
            )?;
        }
        streaming += t0.elapsed();
        // Checkpoint: the stream is drained, so once the repair converges
        // the mirror is authoritative and reads must match bit-for-bit.
        staleness.record(converge(&mut query_client, last_epoch)?);
        let (ok, empty) = cross_validate(&mut query_client, &mirror, pool, 4, "ck")?;
        checkpoint_queries += ok + empty;
    }

    // Restore every toggled edge (a no-op segment if the count was even),
    // so the network ends exactly where it started.
    send_segment(&mut client, &mut pending, &mut next_seq, batch(false))?;
    while !pending.is_empty() {
        recv_ack(
            &mut client,
            &mut pending,
            &mut ack_hist,
            &mut last_epoch,
            &mut updates_acked,
        )?;
    }
    converge(&mut query_client, last_epoch)?;

    let achieved = updates_acked as f64 / streaming.as_secs_f64().max(1e-9);
    eprintln!(
        "loadgen: stream: {sent_segments} segments ({updates_acked} updates) at {achieved:.0} \
         updates/s, {checkpoint_queries} checkpointed reads exact, ack p99 {}us",
        ack_hist.p99_ns() / 1_000
    );

    // Scoped-repair probe: single-edge segments spread across the
    // network, so the last repair on *every* shard (through a router the
    // health counters aggregate per-shard last repairs) is a single-edge
    // batch — that is what the counters then measure. Probe edges are
    // pendant (degree-1) edges where they exist: a leaf-local update whose
    // shortest-path footprint is structurally tiny, which is exactly the
    // "single-leaf batch" the scoped-repair machinery is built for —
    // toggling a high-betweenness edge instead would honestly invalidate
    // half the label roots and measure edge centrality, not repair
    // scoping. Each probe toggles and restores, leaving the network
    // untouched.
    let mut probe_edges: Vec<(u32, u32, u32)> = (0..graph.num_nodes() as u32)
        .filter(|&v| graph.degree(v) == 1)
        .filter_map(|v| graph.neighbors(v).next().map(|(nbr, w)| (v, nbr, w)))
        .collect();
    if probe_edges.is_empty() {
        probe_edges = edges.clone();
    }
    probe_edges.sort_by(|a, b| {
        let (ca, cb) = (graph.coord(a.0), graph.coord(b.0));
        (ca.x, ca.y)
            .partial_cmp(&(cb.x, cb.y))
            .expect("finite coords")
    });
    let probes = 8.min(probe_edges.len());
    for i in 0..probes {
        let (pu, pv, pw) = probe_edges[i * probe_edges.len() / probes];
        for w in [pw.saturating_mul(2), pw] {
            send_segment(
                &mut client,
                &mut pending,
                &mut next_seq,
                vec![WeightUpdate { u: pu, v: pv, w }],
            )?;
            while !pending.is_empty() {
                recv_ack(
                    &mut client,
                    &mut pending,
                    &mut ack_hist,
                    &mut last_epoch,
                    &mut updates_acked,
                )?;
            }
            converge(&mut query_client, last_epoch)?;
        }
    }
    let (ok, _) = cross_validate(&mut query_client, &mirror, pool, 8, "fin")?;
    if ok == 0 {
        return Err("no post-stream query succeeded".to_string());
    }

    // The repair footprint of that single-edge batch, via the server's
    // (or router's aggregated) health counters.
    let resp = query_client
        .call(&Request {
            id: Some("hf".into()),
            op: Op::Health,
        })
        .map_err(|e| format!("final health: {e}"))?;
    let h = match resp.body {
        Body::Health(h) => h,
        other => return Err(format!("expected health, got {other:?}")),
    };
    let repair_ratio = if h.labels_repaired > 0 {
        h.labels_total as f64 / h.labels_repaired as f64
    } else {
        0.0
    };
    let gtree_ratio = if h.gtree_entries_repaired > 0 {
        h.gtree_entries_total as f64 / h.gtree_entries_repaired as f64
    } else {
        0.0
    };
    eprintln!(
        "loadgen: single-edge repair: {}/{} label roots ({}x fewer), {} scoped leaves, \
         {}/{} g-tree entries ({}x fewer), {}ms",
        h.labels_repaired,
        h.labels_total,
        repair_ratio as u64,
        h.repair_scoped_leaves,
        h.gtree_entries_repaired,
        h.gtree_entries_total,
        gtree_ratio as u64,
        h.last_repair_ms
    );

    if let Some(path) = bench_out {
        let json = format!(
            "{{\n  \"bench\": \"update_stream\",\n  \"segments\": {sent_segments},\n  \
             \"segment_edges\": {segment},\n  \"updates\": {updates_acked},\n  \
             \"sustained_updates_per_s\": {achieved:.1},\n  \"ack_p50_us\": {},\n  \
             \"ack_p99_us\": {},\n  \"staleness_p50_ms\": {},\n  \"staleness_p99_ms\": {},\n  \
             \"checkpoint_reads\": {checkpoint_queries},\n  \"mismatches\": 0,\n  \
             \"labels_repaired\": {},\n  \"labels_total\": {},\n  \
             \"repair_scoped_leaves\": {},\n  \"gtree_entries_repaired\": {},\n  \
             \"gtree_entries_total\": {},\n  \"last_repair_ms\": {},\n  \
             \"repair_ratio\": {repair_ratio:.1},\n  \
             \"gtree_repair_ratio\": {gtree_ratio:.1}\n}}\n",
            ack_hist.p50_ns() / 1_000,
            ack_hist.p99_ns() / 1_000,
            staleness.p50_ns() / 1_000_000,
            staleness.p99_ns() / 1_000_000,
            h.labels_repaired,
            h.labels_total,
            h.repair_scoped_leaves,
            h.gtree_entries_repaired,
            h.gtree_entries_total,
            h.last_repair_ms,
        );
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| format!("{path}: {e}"))?;
            }
        }
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("loadgen: wrote {path}");
    }

    if opts.shutdown {
        query_client
            .call(&Request {
                id: None,
                op: Op::Shutdown,
            })
            .map_err(|e| format!("shutdown: {e}"))?;
    }

    if achieved < opts.min_updates_per_s {
        return Err(format!(
            "sustained {achieved:.0} updates/s below required {:.0}",
            opts.min_updates_per_s
        ));
    }
    if opts.min_repair_ratio > 0.0 {
        if h.labels_repaired == 0 {
            return Err("no scoped repair was recorded (are labels enabled?)".to_string());
        }
        if repair_ratio < opts.min_repair_ratio {
            return Err(format!(
                "single-edge repair touched {}/{} label roots ({repair_ratio:.1}x), \
                 required at least {:.1}x fewer than a full rebuild",
                h.labels_repaired, h.labels_total, opts.min_repair_ratio
            ));
        }
        // Gate the G-tree fold the same way, but only when the server
        // maintains one (label-only deployments report 0 totals).
        if h.gtree_entries_total > 0 && gtree_ratio < opts.min_repair_ratio {
            return Err(format!(
                "single-edge repair rewrote {}/{} g-tree entries ({gtree_ratio:.1}x), \
                 required at least {:.1}x fewer than a full rebuild",
                h.gtree_entries_repaired, h.gtree_entries_total, opts.min_repair_ratio
            ));
        }
    }
    println!(
        "STREAM PASS: {updates_acked} updates at {achieved:.0}/s, {checkpoint_queries} \
         checkpointed reads exact, single-edge repair {}/{} roots",
        h.labels_repaired, h.labels_total
    );
    Ok(())
}

/// Queries issued during the mixed read/update leg of `--smoke`.
const MIXED_QUERIES: usize = 48;

#[derive(Default)]
struct MixedStats {
    ok: u64,
    empty: u64,
    updates: u64,
    epoch: u64,
    elapsed: Duration,
    latency: LatencyHistogram,
}

/// `count` sequential queries, each checked bit-for-bit against the local
/// engine. Only valid while the served network equals `engine`'s graph.
fn cross_validate(
    client: &mut Client,
    engine: &Engine,
    pool: &QueryPool,
    count: usize,
    tag: &str,
) -> Result<(u64, u64), String> {
    let mut ok = 0u64;
    let mut empty = 0u64;
    for i in 0..count {
        let spec = pool.spec(i).clone();
        let expected = engine
            .query(&spec.p, &spec.q, spec.phi, spec.agg)
            .map_err(|e| format!("local engine rejected smoke query {tag}{i}: {e}"))?;
        let req = Request {
            id: Some(format!("{tag}{i}")),
            op: Op::Query(QuerySpec {
                deadline_ms: None,
                ..spec
            }),
        };
        let resp = client
            .call(&req)
            .map_err(|e| format!("query {tag}{i}: {e}"))?;
        match (&resp.body, &expected) {
            (
                Body::Ok {
                    p_star,
                    dist,
                    subset,
                    ..
                },
                Some(want),
            ) => {
                if *p_star != want.p_star || *dist != want.dist || *subset != want.subset {
                    return Err(format!(
                        "WRONG ANSWER on query {tag}{i}: got (p*={p_star}, d*={dist}), \
                         expected (p*={}, d*={})",
                        want.p_star, want.dist
                    ));
                }
                ok += 1;
            }
            (Body::Empty, None) => empty += 1,
            (body, want) => {
                return Err(format!(
                    "WRONG ANSWER on query {tag}{i}: got {body:?}, expected {want:?}"
                ))
            }
        }
    }
    Ok((ok, empty))
}

/// Tiny hand-rolled JSON artifact for CI (no serde anywhere in the tree).
fn write_bench_json(path: &str, mixed: &MixedStats) -> Result<(), String> {
    let answered = mixed.ok + mixed.empty;
    let qps = answered as f64 / mixed.elapsed.as_secs_f64().max(1e-9);
    let json = format!(
        "{{\n  \"mixed_queries\": {answered},\n  \"updates\": {},\n  \"final_epoch\": {},\n  \
         \"qps\": {:.1},\n  \"p50_us\": {},\n  \"p90_us\": {},\n  \"p99_us\": {}\n}}\n",
        mixed.updates,
        mixed.epoch,
        qps,
        mixed.latency.p50_ns() / 1_000,
        mixed.latency.p90_ns() / 1_000,
        mixed.latency.p99_ns() / 1_000,
    );
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{path}: {e}"))?;
        }
    }
    std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("loadgen: wrote {path}");
    Ok(())
}

#[derive(Default)]
struct Tally {
    sent: AtomicU64,
    ok: AtomicU64,
    empty: AtomicU64,
    cancelled: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
}

/// Fixed-rate open loop across `conns` connections, with an optional
/// live-update leg on its own connection.
#[allow(clippy::too_many_arguments)]
fn open_loop(
    addr: &str,
    graph: &Graph,
    pool: &QueryPool,
    rate: f64,
    duration: Duration,
    conns: usize,
    update_rate: f64,
    send_shutdown: bool,
) -> Result<(), String> {
    if rate.is_nan() || rate <= 0.0 {
        return Err("--rate must be positive".to_string());
    }
    let conns = conns.max(1);
    let per_conn_interval = Duration::from_secs_f64(conns as f64 / rate);
    let tally = Tally::default();
    let latency = Mutex::new(LatencyHistogram::default());
    let started = Instant::now();
    let mut updates_sent = 0u64;
    let stop_updates = AtomicBool::new(false);

    std::thread::scope(|scope| -> Result<(), String> {
        let updater = if update_rate > 0.0 {
            let edge = mutation_edge(graph)?;
            let stop = &stop_updates;
            Some(scope.spawn(move || updater_loop(addr, edge, update_rate, stop)))
        } else {
            None
        };
        let mut handles = Vec::new();
        for conn in 0..conns {
            let tally = &tally;
            let latency = &latency;
            let addr = addr.to_string();
            handles.push(scope.spawn(move || -> Result<(), String> {
                run_connection(
                    &addr,
                    conn,
                    pool,
                    per_conn_interval,
                    duration,
                    tally,
                    latency,
                )
            }));
        }
        for h in handles {
            h.join().expect("connection thread")?;
        }
        stop_updates.store(true, Ordering::Relaxed);
        if let Some(u) = updater {
            let (sent, epoch) = u.join().expect("updater thread")?;
            updates_sent = sent;
            eprintln!("loadgen: update leg: {sent} updates applied, final epoch {epoch}");
        }
        Ok(())
    })?;

    let elapsed = started.elapsed().as_secs_f64();
    let sent = tally.sent.load(Ordering::Relaxed);
    let ok = tally.ok.load(Ordering::Relaxed);
    let empty = tally.empty.load(Ordering::Relaxed);
    let cancelled = tally.cancelled.load(Ordering::Relaxed);
    let shed = tally.shed.load(Ordering::Relaxed);
    let errors = tally.errors.load(Ordering::Relaxed);
    let answered = ok + empty;
    let hist = latency.lock().unwrap();
    println!(
        "offered {:.1} qps | achieved {:.1} qps | sent {sent} | ok {ok} | empty {empty} | \
         cancelled {cancelled} | shed {shed} ({:.1}%) | errors {errors} | updates {updates_sent}",
        rate,
        answered as f64 / elapsed,
        100.0 * shed as f64 / sent.max(1) as f64,
    );
    println!(
        "latency (answered): p50 {}us | p90 {}us | p99 {}us | max {}us",
        hist.p50_ns() / 1_000,
        hist.p90_ns() / 1_000,
        hist.p99_ns() / 1_000,
        hist.max_ns() / 1_000,
    );
    drop(hist);

    if send_shutdown {
        let mut client = connect_with_retry(addr, Duration::from_secs(5))?;
        client
            .call(&Request {
                id: None,
                op: Op::Shutdown,
            })
            .map_err(|e| format!("shutdown: {e}"))?;
    }
    if errors > 0 {
        return Err(format!("{errors} requests failed"));
    }
    Ok(())
}

/// One connection: a paced writer thread plus this (reader) thread
/// matching responses back to send timestamps by id.
fn run_connection(
    addr: &str,
    conn: usize,
    pool: &QueryPool,
    interval: Duration,
    duration: Duration,
    tally: &Tally,
    latency: &Mutex<LatencyHistogram>,
) -> Result<(), String> {
    let client = connect_with_retry(addr, Duration::from_secs(20))?;
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let (mut rx, mut tx) = client.split();
    let sent_at: Mutex<HashMap<String, Instant>> = Mutex::new(HashMap::new());
    let writer_done = AtomicU64::new(0); // 0 = running, else final sent count + 1

    std::thread::scope(|scope| -> Result<(), String> {
        // Writer: one request per tick, never waiting for responses.
        let sent_at_ref = &sent_at;
        let writer_done_ref = &writer_done;
        let writer = scope.spawn(move || -> Result<u64, String> {
            let start = Instant::now();
            let mut seq = 0u64;
            loop {
                let tick = interval.mul_f64(seq as f64);
                if tick >= duration {
                    break;
                }
                if let Some(sleep) = tick.checked_sub(start.elapsed()) {
                    std::thread::sleep(sleep);
                }
                let id = format!("c{conn}-{seq}");
                let spec = pool.spec(conn.wrapping_add(seq as usize)).clone();
                sent_at_ref
                    .lock()
                    .unwrap()
                    .insert(id.clone(), Instant::now());
                tx.send(&Request {
                    id: Some(id),
                    op: Op::Query(spec),
                })
                .map_err(|e| format!("send: {e}"))?;
                seq += 1;
                tally.sent.fetch_add(1, Ordering::Relaxed);
            }
            writer_done_ref.store(seq + 1, Ordering::Release);
            Ok(seq)
        });

        // Reader: this thread. Drain until every sent id is answered.
        let mut received = 0u64;
        let mut idle_timeouts = 0u32;
        loop {
            let done = writer_done.load(Ordering::Acquire);
            if done != 0 && received >= done - 1 {
                break;
            }
            let resp = match rx.recv() {
                Ok(r) => {
                    idle_timeouts = 0;
                    r
                }
                // A read timeout with nothing outstanding just means the
                // writer is still pacing (or the box is starved); keep
                // waiting, but not forever.
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) && sent_at.lock().unwrap().is_empty()
                        && idle_timeouts < 4 =>
                {
                    idle_timeouts += 1;
                    continue;
                }
                Err(e) => {
                    // Count everything still outstanding as an error.
                    let outstanding = sent_at.lock().unwrap().len() as u64;
                    tally
                        .errors
                        .fetch_add(outstanding.max(1), Ordering::Relaxed);
                    eprintln!(
                        "loadgen: conn {conn}: read failed with {outstanding} outstanding: {e}"
                    );
                    break;
                }
            };
            let when = resp
                .id
                .as_ref()
                .and_then(|id| sent_at.lock().unwrap().remove(id));
            match resp.body {
                Body::Ok { .. } | Body::Empty => {
                    if let Some(t0) = when {
                        latency.lock().unwrap().record(t0.elapsed());
                    }
                    match resp.body {
                        Body::Ok { .. } => tally.ok.fetch_add(1, Ordering::Relaxed),
                        _ => tally.empty.fetch_add(1, Ordering::Relaxed),
                    };
                }
                Body::Cancelled => {
                    tally.cancelled.fetch_add(1, Ordering::Relaxed);
                }
                Body::Shed => {
                    tally.shed.fetch_add(1, Ordering::Relaxed);
                }
                other => {
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("loadgen: conn {conn}: unexpected response {other:?}");
                }
            }
            received += 1;
        }

        writer.join().expect("writer thread")?;
        Ok(())
    })
}
