//! Fig. 7: efficiency with clustered `Q`, varying the cluster count `C`.
//!
//! Paper claims: more clusters cost more in general; the effect is
//! strongest for the expansion-driven methods (`R-List`, `Exact-max`,
//! A*/INE backends); as `C` grows the cost approaches the uniform-Q cost.

use fann_bench::*;
use fann_core::Aggregate;

fn main() {
    let args = Args::parse();
    let cfg = Defaults::from_args(&args);
    let env = cfg.env();
    let points: Vec<SweepPoint> = [1usize, 2, 4, 6, 8]
        .into_iter()
        .map(|c| {
            let mut p = SweepPoint::defaults(&cfg, c.to_string());
            p.c = c;
            p
        })
        .collect();
    sweep_tables(&env, &cfg, "7", "C", &points, 7000);

    // Shape: cost at C=8 approaches the uniform-Q cost (paper's example:
    // IER-A* 2.16s uniform vs 2.37s at C=8).
    let cell = |c: usize| -> Option<f64> {
        run_cell(cfg.budget, cfg.queries, |i| {
            let ctx = make_ctx(
                &env,
                7600 + i as u64,
                cfg.d,
                cfg.m,
                cfg.a,
                c,
                cfg.phi,
                Aggregate::Max,
            );
            time(|| ctx.run("IER-kNN", "IER-A*")).1
        })
    };
    if let (Some(c8), Some(uni)) = (cell(8), cell(1)) {
        println!(
            "[shape] IER-A*: C=8 {} vs uniform {} (ratio {:.2}; paper ~1.1)",
            fmt_secs(Some(c8)),
            fmt_secs(Some(uni)),
            c8 / uni
        );
    }
}
