//! Fig. 4: (a) all FANN_R algorithms varying the density `d` of `P`;
//! (b) `R-List` vs `Baseline` (both with index-free INE `g_phi`).
//!
//! Paper claims to reproduce:
//! * IER-kNN(-PHL) best at low `d`; `APX-sum` overtakes once `d > 0.01`;
//! * `APX-sum` is stable in `d` (it depends on `Q`, not `P`);
//! * index-free `R-List` beats index-free `Baseline`, which DNFs at high `d`.

use fann_bench::*;
use fann_core::Aggregate;

fn main() {
    let args = Args::parse();
    let cfg = Defaults::from_args(&args);
    let env = cfg.env();
    let densities = [0.0001, 0.001, 0.01, 0.1, 1.0];

    let header: Vec<String> = std::iter::once("algorithm".to_string())
        .chain(densities.iter().map(|d| format!("d={d}")))
        .collect();

    // (a) All algorithms (universal ones run max; APX-sum runs sum).
    let mut results: std::collections::HashMap<(String, usize), Option<f64>> =
        std::collections::HashMap::new();
    let mut rows = Vec::new();
    for (algo, gphi) in ALL_ALGOS {
        let agg = if algo == "APX-sum" {
            Aggregate::Sum
        } else {
            Aggregate::Max
        };
        let mut row = vec![format!("{algo}({gphi})")];
        let mut dead = false;
        for (di, &d) in densities.iter().enumerate() {
            // GD is monotone in d; skip the rest of the row after a DNF.
            let secs = if dead && algo == "GD" {
                None
            } else {
                run_cell(cfg.budget, cfg.queries, |i| {
                    let ctx = make_ctx(&env, 2000 + i as u64, d, cfg.m, cfg.a, cfg.c, cfg.phi, agg);
                    time(|| ctx.run(algo, gphi)).1
                })
            };
            dead = dead || secs.is_none();
            results.insert((algo.to_string(), di), secs);
            row.push(fmt_secs(secs));
        }
        rows.push(row);
    }
    print_table("Fig. 4(a): all algorithms, varying d", &header, &rows);

    // (b) R-List vs Baseline (GD), both INE.
    let mut rows = Vec::new();
    for algo in ["GD", "R-List"] {
        let label = if algo == "GD" {
            "Baseline(INE)"
        } else {
            "R-List(INE)"
        };
        let mut row = vec![label.to_string()];
        let mut dead = false;
        for &d in &densities {
            if dead {
                row.push(fmt_secs(None));
                continue;
            }
            let secs = run_cell(cfg.budget, cfg.queries, |i| {
                let ctx = make_ctx(
                    &env,
                    2000 + i as u64,
                    d,
                    cfg.m,
                    cfg.a,
                    cfg.c,
                    cfg.phi,
                    Aggregate::Max,
                );
                time(|| ctx.run(algo, "INE")).1
            });
            dead = secs.is_none();
            row.push(fmt_secs(secs));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 4(b): R-List vs Baseline, index-free (INE), varying d",
        &header,
        &rows,
    );

    // Shape checks.
    let apx_times: Vec<f64> = (0..densities.len())
        .filter_map(|di| results[&("APX-sum".to_string(), di)])
        .collect();
    if apx_times.len() >= 3 {
        let (mean, std) = mean_std(&apx_times);
        println!(
            "[shape] APX-sum stability across d: mean {:.4}s, std {:.4}s ({}x)",
            mean,
            std,
            (std / mean * 100.0).round() / 100.0
        );
    }
    if let (Some(apx), Some(ier)) = (
        results[&("APX-sum".to_string(), 3usize)],
        results[&("IER-kNN".to_string(), 3usize)],
    ) {
        println!(
            "[shape] at d=0.1: APX-sum {} vs IER-kNN {} -> {}",
            fmt_secs(Some(apx)),
            fmt_secs(Some(ier)),
            if apx < ier {
                "APX-sum wins (paper: APX-sum overtakes for d > 0.01)"
            } else {
                "IER-kNN still wins at this scale"
            }
        );
    }
}
