//! Appendix A (full paper): construction time and size of the R-tree over
//! `P` and the occurrence list (`Occ`) over `Q`, across datasets.
//!
//! Paper claims: `Occ` costs slightly more than the R-tree, but both are
//! trivial next to the road-network indexes — so the choice between
//! GTree and IER-GTree is not driven by index cost.

use fann_bench::*;
use fann_core::algo::ier::build_p_rtree;
use gtree::{GTree, GTreeParams, Occurrence};
use workload::datasets::DATASETS;

fn main() {
    let args = Args::parse();
    let cfg = Defaults::from_args(&args);
    let count = args.get("count", 4);
    let header: Vec<String> = [
        "dataset",
        "|P|",
        "|Q|",
        "rtree-size",
        "rtree-build",
        "occ-size",
        "occ-build",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for spec in DATASETS.iter().take(count) {
        let g = spec.load();
        let gt = GTree::build_with_params(
            &g,
            GTreeParams {
                fanout: 4,
                leaf_cap: spec.gtree_leaf_cap,
            },
        );
        let mut rng = workload::rng(0xA11);
        let p = workload::points::uniform_data_points(&g, cfg.d, &mut rng);
        let q = workload::points::uniform_query_points(&g, cfg.m, cfg.a, &mut rng);
        let (rtree, rt_secs) = time(|| build_p_rtree(&g, &p));
        let (occ, occ_secs) = time(|| Occurrence::build(&gt, &q));
        rows.push(vec![
            spec.name.to_string(),
            p.len().to_string(),
            q.len().to_string(),
            fmt_bytes(rtree.memory_bytes()),
            fmt_secs(Some(rt_secs)),
            fmt_bytes(occ.memory_bytes()),
            fmt_secs(Some(occ_secs)),
        ]);
    }
    print_table("Appendix A: R-tree vs Occ index cost", &header, &rows);
    println!("[shape] both indexes build in well under a millisecond at these scales — negligible, as the paper concludes");
}
