//! Explain experiment (beyond the paper's plots, quantifying §III's core
//! argument): how many times does each algorithm invoke `g_phi`?
//!
//! Expectation: GD = |P| always; R-List stops early via the threshold;
//! IER-kNN prunes R-tree subtrees and calls fewest; Exact-max calls
//! exactly once.

use fann_bench::*;
use fann_core::algo::{exact_max_with_gphi, gd, ier_knn, r_list};
use fann_core::gphi::counting::CountingPhi;
use fann_core::gphi::ine::InePhi;
use fann_core::Aggregate;

fn main() {
    let args = Args::parse();
    let cfg = Defaults::from_args(&args);
    let env = cfg.env();
    let densities = [0.001, 0.01, 0.1];

    let header: Vec<String> = std::iter::once("algorithm".to_string())
        .chain(densities.iter().map(|d| format!("calls@d={d}")))
        .collect();
    let mut rows: Vec<Vec<String>> = vec![
        vec!["|P|".to_string()],
        vec!["GD".to_string()],
        vec!["R-List".to_string()],
        vec!["IER-kNN".to_string()],
        vec!["Exact-max".to_string()],
    ];
    for &d in &densities {
        let ctx = make_ctx(&env, 42, d, cfg.m, cfg.a, cfg.c, cfg.phi, Aggregate::Max);
        let query = ctx.query();
        let counting = CountingPhi::new(InePhi::new(&env.graph, &ctx.q));
        rows[0].push(ctx.p.len().to_string());

        gd(&query, &counting);
        rows[1].push(counting.calls().to_string());
        counting.reset();

        r_list(&env.graph, &query, &counting);
        rows[2].push(counting.calls().to_string());
        counting.reset();

        ier_knn(&env.graph, &query, &ctx.rtree_p, &counting);
        rows[3].push(counting.calls().to_string());
        counting.reset();

        exact_max_with_gphi(&env.graph, &query, &counting);
        rows[4].push(counting.calls().to_string());
        counting.reset();
    }
    print_table("g_phi invocation counts per algorithm", &header, &rows);
    println!("[shape] GD = |P|; R-List and IER-kNN prune; Exact-max calls exactly once");
}
