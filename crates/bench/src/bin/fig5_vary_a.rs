//! Fig. 5: efficiency varying the coverage ratio `A` of `Q`.
//!
//! Paper claims: all algorithms slow down as `A` grows (sparser `Q` means
//! wider travel); the "expanding" backends (A*, IER-A*, INE) have the
//! steepest slopes; `APX-sum` and `GD` are comparatively stable.

use fann_bench::*;

fn main() {
    let args = Args::parse();
    let cfg = Defaults::from_args(&args);
    let env = cfg.env();
    let points: Vec<SweepPoint> = [0.01, 0.05, 0.10, 0.15, 0.20]
        .into_iter()
        .map(|a| {
            let mut p = SweepPoint::defaults(&cfg, format!("{:.0}%", a * 100.0));
            p.a = a;
            p
        })
        .collect();
    let matrix = sweep_tables(&env, &cfg, "5", "A", &points, 5000);
    // Shape: INE/A* slope steeper than PHL slope.
    let slope = |row: &Vec<Option<f64>>| -> Option<f64> {
        match (
            row.first().copied().flatten(),
            row.last().copied().flatten(),
        ) {
            (Some(a), Some(b)) if a > 0.0 => Some(b / a),
            _ => None,
        }
    };
    let ine = slope(&matrix[2]);
    let phl = slope(&matrix[3]);
    if let (Some(i), Some(p)) = (ine, phl) {
        println!(
            "[shape] growth A=1%..20%: INE x{i:.1} vs PHL x{p:.1} ({})",
            if i >= p {
                "OK: expanding backends steeper"
            } else {
                "WARN: unexpected"
            }
        );
    }
}
