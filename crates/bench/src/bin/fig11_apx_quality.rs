//! Fig. 11: approximation quality of `APX-sum` (ratio d_alpha / d*),
//! varying `d` (a) and `phi` (b); `--appendix true` adds the full-paper
//! Appendix B sweeps over `A`, `M`, and `C`.
//!
//! Paper claims: the ratio never exceeds 1.2 in practice (guaranteed <= 3,
//! <= 2 for Q ⊆ P) and is stable across every parameter.

use fann_bench::*;
use fann_core::algo::{apx_sum, gd};
use fann_core::Aggregate;

#[allow(clippy::too_many_arguments)]
fn ratio_cell(
    env: &Env,
    cfg: &Defaults,
    seed: u64,
    d: f64,
    m: usize,
    a: f64,
    c: usize,
    phi: f64,
) -> (f64, f64) {
    let mut ratios = Vec::new();
    for i in 0..cfg.queries.max(3) {
        let ctx = make_ctx(env, seed + i as u64, d, m, a, c, phi, Aggregate::Sum);
        let query = ctx.query();
        let gphi = ctx.gphi("PHL");
        let (Some(approx), Some(exact)) = (
            apx_sum(&env.graph, &query, gphi.as_ref()),
            gd(&query, gphi.as_ref()),
        ) else {
            continue;
        };
        assert!(approx.dist >= exact.dist, "approx beat exact");
        assert!(
            approx.dist <= 3 * exact.dist.max(1),
            "3-approx bound violated"
        );
        ratios.push(approx.dist as f64 / exact.dist.max(1) as f64);
    }
    mean_std(&ratios)
}

fn main() {
    let args = Args::parse();
    let cfg = Defaults::from_args(&args);
    let env = cfg.env();

    let sweep = |name: &str, cells: Vec<(String, f64, usize, f64, usize, f64)>| {
        let header = vec![name.to_string(), "ratio".to_string(), "stddev".to_string()];
        let mut rows = Vec::new();
        let mut worst: f64 = 0.0;
        for (i, (label, d, m, a, c, phi)) in cells.into_iter().enumerate() {
            let (mean, std) = ratio_cell(&env, &cfg, 11_000 + 97 * i as u64, d, m, a, c, phi);
            worst = worst.max(mean + std);
            rows.push(vec![label, format!("{mean:.4}"), format!("{std:.4}")]);
        }
        print_table(
            &format!("Fig. 11 / App. B: APX-sum ratio, varying {name}"),
            &header,
            &rows,
        );
        worst
    };

    let mut worst: f64 = 0.0;
    worst = worst.max(sweep(
        "d",
        [0.0001, 0.001, 0.01, 0.1, 1.0]
            .into_iter()
            .map(|d| (format!("{d}"), d, cfg.m, cfg.a, cfg.c, cfg.phi))
            .collect(),
    ));
    worst = worst.max(sweep(
        "phi",
        [0.1, 0.3, 0.5, 0.7, 1.0]
            .into_iter()
            .map(|phi| (format!("{phi}"), cfg.d, cfg.m, cfg.a, cfg.c, phi))
            .collect(),
    ));
    if args.flag("appendix") {
        worst = worst.max(sweep(
            "A",
            [0.01, 0.05, 0.10, 0.15, 0.20]
                .into_iter()
                .map(|a| {
                    (
                        format!("{:.0}%", a * 100.0),
                        cfg.d,
                        cfg.m,
                        a,
                        cfg.c,
                        cfg.phi,
                    )
                })
                .collect(),
        ));
        worst = worst.max(sweep(
            "M",
            [64usize, 128, 256, 512]
                .into_iter()
                .map(|m| (m.to_string(), cfg.d, m, cfg.a, cfg.c, cfg.phi))
                .collect(),
        ));
        worst = worst.max(sweep(
            "C",
            [1usize, 2, 4, 6, 8]
                .into_iter()
                .map(|c| (c.to_string(), cfg.d, cfg.m, cfg.a, c, cfg.phi))
                .collect(),
        ));
    }
    println!(
        "[shape] worst mean+std ratio observed: {worst:.4} ({}; paper: always < 1.2)",
        if worst < 1.2 {
            "OK"
        } else {
            "WARN: above the paper's empirical bound"
        }
    );
}
