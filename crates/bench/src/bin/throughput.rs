//! Batch throughput experiment: recycled scratch vs per-query setup.
//!
//! ```text
//! cargo run --release -p fann-bench --bin throughput -- \
//!     --nodes 20000 --queries 400 --p 12 --q 6 --phi 0.5 --workers 0
//! ```
//!
//! Shape checks (`--check true`): reusing a backend across the stream must
//! be at least 2x faster than constructing it per query for both index-free
//! backends (INE, A*), and must not allocate more per query.
//!
//! `--smoke true` shrinks the workload to CI size and skips the timing
//! shape checks (too noisy on a tiny graph) while keeping the correctness
//! ones: traced answers match untraced (asserted inside `run_throughput`)
//! and the per-strategy stats are non-empty.

use fann_bench::throughput::{run_throughput, CountingAlloc, ThroughputOpts};
use fann_bench::Args;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args = Args::parse();
    let smoke = args.get("smoke", false);
    let defaults = if smoke {
        ThroughputOpts {
            nodes: 3_000,
            queries: 60,
            ..ThroughputOpts::default()
        }
    } else {
        ThroughputOpts::default()
    };
    let opts = ThroughputOpts {
        nodes: args.get("nodes", defaults.nodes),
        queries: args.get("queries", defaults.queries),
        p_size: args.get("p", defaults.p_size),
        q_size: args.get("q", defaults.q_size),
        phi: args.get("phi", defaults.phi),
        workers: args.get("workers", defaults.workers),
        seed: args.get("seed", defaults.seed),
    };
    let report = run_throughput(&opts);

    if smoke {
        let traced = &report.traced;
        assert!(
            traced.total_queries() == opts.queries as u64,
            "traced pass covered {} of {} queries",
            traced.total_queries(),
            opts.queries,
        );
        assert!(
            !traced.total_stats().is_empty(),
            "traced pass recorded no work"
        );
        for (s, r) in traced.active() {
            assert!(!r.stats.is_empty(), "{s} recorded no work");
            assert_eq!(r.latency.count(), r.queries, "{s} latency samples");
        }
        println!("smoke ok: traced == untraced, stats recorded for every strategy");
        return;
    }

    if args.get("check", true) {
        let ine_speedup = report.ine_reused.qps / report.ine_fresh.qps;
        let astar_speedup = report.astar_reused.qps / report.astar_fresh.qps;
        assert!(
            ine_speedup >= 2.0,
            "INE reused backend only {ine_speedup:.2}x faster than fresh (need >= 2x)"
        );
        assert!(
            astar_speedup >= 2.0,
            "A* reused backend only {astar_speedup:.2}x faster than fresh (need >= 2x)"
        );
        assert!(
            report.ine_reused.allocs_per_query <= report.ine_fresh.allocs_per_query,
            "INE reuse increased allocations/query: {} -> {}",
            report.ine_fresh.allocs_per_query,
            report.ine_reused.allocs_per_query,
        );
        assert!(
            report.astar_reused.allocs_per_query <= report.astar_fresh.allocs_per_query,
            "A* reuse increased allocations/query: {} -> {}",
            report.astar_fresh.allocs_per_query,
            report.astar_reused.allocs_per_query,
        );
        assert!(
            report.engine_batch1.qps >= report.engine_seq.qps * 0.8,
            "single-worker batch regressed vs sequential: {:.0} vs {:.0} q/s",
            report.engine_batch1.qps,
            report.engine_seq.qps,
        );
        println!("shape ok: INE {ine_speedup:.2}x, A* {astar_speedup:.2}x (>= 2x required)");
    }
}
