//! Fig. 10: k-FANN_R efficiency varying `k` (1..20).
//!
//! Paper claims: cost grows with `k` for every algorithm except `GD`
//! (which evaluates all of `P` regardless); `Exact-max` and `R-List` are
//! the most sensitive to `k` (more expansion before k counters fire).

use fann_bench::*;
use fann_core::algo::topk::{exact_max_topk, gd_topk, ier_topk, rlist_topk};
use fann_core::Aggregate;

fn main() {
    let args = Args::parse();
    let cfg = Defaults::from_args(&args);
    let env = cfg.env();
    let ks = [1usize, 5, 10, 15, 20];

    let header: Vec<String> = std::iter::once("algorithm".to_string())
        .chain(ks.iter().map(|k| format!("k={k}")))
        .collect();
    let mut rows = Vec::new();
    let mut results = std::collections::HashMap::new();
    for algo in ["GD", "R-List", "IER-kNN", "Exact-max"] {
        let mut row = vec![algo.to_string()];
        for &k in &ks {
            let secs = run_cell(cfg.budget, cfg.queries, |i| {
                let ctx = make_ctx(
                    &env,
                    10_000 + i as u64,
                    cfg.d,
                    cfg.m,
                    cfg.a,
                    cfg.c,
                    cfg.phi,
                    Aggregate::Max,
                );
                let query = ctx.query();
                time(|| match algo {
                    "GD" => gd_topk(&query, ctx.gphi("PHL").as_ref(), k),
                    "R-List" => rlist_topk(&env.graph, &query, ctx.gphi("PHL").as_ref(), k),
                    "IER-kNN" => ier_topk(
                        &env.graph,
                        &query,
                        &ctx.rtree_p,
                        ctx.gphi("IER-PHL").as_ref(),
                        k,
                    ),
                    "Exact-max" => exact_max_topk(&env.graph, &query, k),
                    _ => unreachable!(),
                })
                .1
            });
            results.insert((algo, k), secs);
            row.push(fmt_secs(secs));
        }
        rows.push(row);
    }
    print_table("Fig. 10: k-FANN_R, varying k", &header, &rows);

    // Shape: GD flat in k; Exact-max grows.
    let ratio = |algo: &'static str| -> Option<f64> {
        match (results[&(algo, 1)], results[&(algo, 20)]) {
            (Some(a), Some(b)) if a > 0.0 => Some(b / a),
            _ => None,
        }
    };
    if let (Some(gdr), Some(emr)) = (ratio("GD"), ratio("Exact-max")) {
        println!(
            "[shape] k=1 -> k=20 growth: GD x{gdr:.2} (paper: stable), Exact-max x{emr:.2} (paper: grows) ({})",
            if emr > gdr { "OK" } else { "WARN" }
        );
    }
}
