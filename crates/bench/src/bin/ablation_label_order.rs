//! Ablation (DESIGN.md §7): hub-ordering quality for the label oracle.
//!
//! The "PHL" role's cost is dominated by label size, which depends
//! entirely on the vertex order. Compares three orders on the same
//! network: input (worst case), degree (our default), and
//! contraction-hierarchy rank (importance from the CH preprocessing) —
//! the CH order should produce markedly smaller labels, explaining why
//! production labelings invest in good orders.

use fann_bench::*;
use hublabel::{order_by_importance, HubLabels, Ordering};

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 4000);
    let g = workload::synth::road_network(nodes, &mut workload::rng(0x0DE2));
    eprintln!("[env] graph: {} nodes", g.num_nodes());

    let header: Vec<String> = ["order", "entries", "avg/node", "size", "build"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    let mut sizes = Vec::new();

    let (hl, secs) = time(|| HubLabels::build_with_ordering(&g, Ordering::Input));
    rows.push(row("input", &hl, secs));
    sizes.push(hl.total_label_entries());

    let (hl, secs) = time(|| HubLabels::build_with_ordering(&g, Ordering::Degree));
    rows.push(row("degree", &hl, secs));
    sizes.push(hl.total_label_entries());

    let (ch, ch_secs) = time(|| ch_index::Ch::build(&g));
    let ranks: Vec<u64> = (0..g.num_nodes() as u32)
        .map(|v| ch.rank(v) as u64)
        .collect();
    let order = order_by_importance(&ranks);
    let (hl, secs) = time(|| HubLabels::build_with_order(&g, &order));
    rows.push(row(
        "CH-rank",
        &hl,
        secs + ch_secs, // include the cost of computing the order
    ));
    sizes.push(hl.total_label_entries());

    print_table("Ablation: label size by hub order", &header, &rows);
    println!(
        "[shape] CH-rank labels are {:.1}x smaller than input order, {:.1}x vs degree ({})",
        sizes[0] as f64 / sizes[2] as f64,
        sizes[1] as f64 / sizes[2] as f64,
        if sizes[2] <= sizes[1] {
            "OK: importance order wins"
        } else {
            "WARN"
        }
    );
}

fn row(name: &str, hl: &HubLabels, secs: f64) -> Vec<String> {
    vec![
        name.to_string(),
        hl.total_label_entries().to_string(),
        format!("{:.1}", hl.avg_label_size()),
        fmt_bytes(hl.memory_bytes()),
        fmt_secs(Some(secs)),
    ]
}
