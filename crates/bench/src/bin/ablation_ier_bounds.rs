//! Ablation (DESIGN.md §7): IER-kNN with the tight flexible Euclidean
//! bound `g^eps_phi(e, Q)` vs the cheap `d(p, Q)` bound through the MBR
//! of `Q` (§III-C, last paragraph), varying `phi`.
//!
//! Expectation: both are exact; the cheap bound evaluates faster per entry
//! but prunes less, so it loses ground as `phi` grows (the tight bound's
//! selectivity matters more when more of `Q` must be covered).

use fann_bench::*;
use fann_core::algo::{ier_knn_with_bound, IerBound};
use fann_core::Aggregate;

fn main() {
    let args = Args::parse();
    let cfg = Defaults::from_args(&args);
    let env = cfg.env();
    let phis = [0.1, 0.3, 0.5, 0.7, 1.0];
    let header: Vec<String> = std::iter::once("bound".to_string())
        .chain(phis.iter().map(|p| format!("phi={p}")))
        .collect();
    let mut rows = Vec::new();
    for (label, bound) in [
        ("flexible g^eps_phi", IerBound::Flexible),
        ("cheap d(p,Q)", IerBound::MbrOfQ),
    ] {
        let mut row = vec![label.to_string()];
        for &phi in &phis {
            let secs = run_cell(cfg.budget, cfg.queries, |i| {
                let ctx = make_ctx(
                    &env,
                    15_000 + i as u64,
                    cfg.d,
                    cfg.m,
                    cfg.a,
                    cfg.c,
                    phi,
                    Aggregate::Max,
                );
                let query = ctx.query();
                let gphi = ctx.gphi("IER-PHL");
                time(|| ier_knn_with_bound(&env.graph, &query, &ctx.rtree_p, gphi.as_ref(), bound))
                    .1
            });
            row.push(fmt_secs(secs));
        }
        rows.push(row);
    }
    print_table(
        "Ablation: IER-kNN pruning bound, varying phi",
        &header,
        &rows,
    );

    // Sanity: both bounds agree on the answer.
    let ctx = make_ctx(
        &env,
        15_999,
        cfg.d,
        cfg.m,
        cfg.a,
        cfg.c,
        cfg.phi,
        Aggregate::Max,
    );
    let query = ctx.query();
    let gphi = ctx.gphi("IER-PHL");
    let a = ier_knn_with_bound(
        &env.graph,
        &query,
        &ctx.rtree_p,
        gphi.as_ref(),
        IerBound::Flexible,
    );
    let b = ier_knn_with_bound(
        &env.graph,
        &query,
        &ctx.rtree_p,
        gphi.as_ref(),
        IerBound::MbrOfQ,
    );
    assert_eq!(
        a.map(|x| x.dist),
        b.map(|x| x.dist),
        "bounds disagree on d*"
    );
    println!("[shape] both bounds return identical d* (exactness preserved)");
}
