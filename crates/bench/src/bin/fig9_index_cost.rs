//! Fig. 9: index size (a) and construction time (b) of G-tree vs the
//! label oracle ("PHL" role) across the Table III datasets.
//!
//! Paper claims: G-tree costs less storage than PHL; construction times
//! are comparable; PHL fails to build on the largest datasets (CTR, USA)
//! on a single commodity machine — reproduced here with a label-entry
//! budget proportional to memory.
//!
//! By default the four smallest datasets are built; pass `--all true` for
//! all seven (the large ones take a while).

use fann_bench::*;
use gtree::{GTree, GTreeParams};
use hublabel::HubLabels;
use workload::datasets::DATASETS;

fn main() {
    let args = Args::parse();
    let count = if args.flag("all") {
        7
    } else {
        args.get("count", 4)
    };
    // Label budget: entries beyond ~600 x |V| count as "out of memory",
    // calibrated so the two largest datasets fail like the paper's PHL.
    let label_budget_factor: usize = args.get("label-budget", 600);

    let header: Vec<String> = [
        "dataset",
        "nodes",
        "edges",
        "gtree-size",
        "label-size",
        "gtree-build",
        "label-build",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut shapes = Vec::new();
    for spec in DATASETS.iter().take(count) {
        eprintln!(
            "[fig9] building {} (~{} nodes)...",
            spec.name, spec.target_nodes
        );
        let g = spec.load();
        let (gt, gt_secs) = time(|| {
            GTree::build_with_params(
                &g,
                GTreeParams {
                    fanout: 4,
                    leaf_cap: spec.gtree_leaf_cap,
                },
            )
        });
        let budget = label_budget_factor * g.num_nodes();
        let (hl, hl_secs) = time(|| HubLabels::build_with_limit(&g, budget));
        let (label_size, label_build) = match &hl {
            Some(h) => (fmt_bytes(h.memory_bytes()), fmt_secs(Some(hl_secs))),
            None => ("OOM".to_string(), "fail".to_string()),
        };
        shapes.push((
            spec.name,
            gt.memory_bytes(),
            hl.as_ref().map(|h| h.memory_bytes()),
        ));
        rows.push(vec![
            spec.name.to_string(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            fmt_bytes(gt.memory_bytes()),
            label_size,
            fmt_secs(Some(gt_secs)),
            label_build,
        ]);
    }
    print_table(
        "Fig. 9: index size and construction time per dataset",
        &header,
        &rows,
    );

    let smaller = shapes
        .iter()
        .filter_map(|&(_, g, h)| h.map(|h| g <= h))
        .filter(|&b| b)
        .count();
    let built = shapes.iter().filter(|&&(_, _, h)| h.is_some()).count();
    println!(
        "[shape] G-tree smaller than labels on {smaller}/{built} built datasets \
         (paper: G-tree costs less storage than PHL)"
    );
    if count == 7 {
        let failed: Vec<&str> = shapes
            .iter()
            .filter(|&&(_, _, h)| h.is_none())
            .map(|&(n, _, _)| n)
            .collect();
        println!("[shape] label oracle failed on: {failed:?} (paper: PHL fails on CTR, USA)");
    }
}
