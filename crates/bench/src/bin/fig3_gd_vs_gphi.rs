//! Fig. 3: efficiency of `GD` (a) and IER-kNN (b) implemented by different
//! `g_phi` backends, varying the density `d` of `P`.
//!
//! Paper claims to reproduce (shape, not absolute numbers):
//! * PHL / IER-PHL are the fastest backends, A* / IER-A* the slowest;
//! * runtime grows ~linearly (GD) / sublinearly (IER-kNN) in `d`;
//! * IER-kNN beats GD by 1–3 orders of magnitude for the same `g_phi`.
//!
//! Usage: `fig3_gd_vs_gphi [--nodes N] [--queries K] [--budget SECS] ...`

use fann_bench::*;
use fann_core::Aggregate;

fn main() {
    let args = Args::parse();
    let cfg = Defaults::from_args(&args);
    let env = cfg.env();
    let densities = [0.0001, 0.001, 0.01, 0.1, 1.0];

    let header: Vec<String> = std::iter::once("g_phi".to_string())
        .chain(densities.iter().map(|d| format!("d={d}")))
        .collect();

    let cell = |framework: &str, gphi: &str, d: f64| -> Option<f64> {
        run_cell(cfg.budget, cfg.queries, |i| {
            let ctx = make_ctx(
                &env,
                1000 + i as u64,
                d,
                cfg.m,
                cfg.a,
                cfg.c,
                cfg.phi,
                Aggregate::Max,
            );
            time(|| ctx.run(framework, gphi)).1
        })
    };

    let mut means: std::collections::HashMap<(String, usize), Option<f64>> =
        std::collections::HashMap::new();
    for framework in ["GD", "IER-kNN"] {
        let mut rows = Vec::new();
        for gphi in GPHI_NAMES {
            let mut row = vec![gphi.to_string()];
            // GD cost is monotone in d: once a density DNFs, skip the rest
            // of the row instead of burning the budget on a lost cause.
            let mut dead = false;
            for (di, &d) in densities.iter().enumerate() {
                let secs = if dead && framework == "GD" {
                    None
                } else {
                    cell(framework, gphi, d)
                };
                dead = dead || secs.is_none();
                means.insert((format!("{framework}/{gphi}"), di), secs);
                row.push(fmt_secs(secs));
            }
            rows.push(row);
        }
        let part = if framework == "GD" { "a" } else { "b" };
        print_table(
            &format!("Fig. 3({part}): {framework} by g_phi, varying d"),
            &header,
            &rows,
        );
    }

    // Shape checks at the default density (d = 0.001).
    let at = |key: &str| means[&(key.to_string(), 1usize)];
    let mut ok = true;
    for framework in ["GD", "IER-kNN"] {
        if let (Some(phl), Some(astar)) = (
            at(&format!("{framework}/PHL")),
            at(&format!("{framework}/A*")),
        ) {
            if phl > astar {
                eprintln!(
                    "[shape] WARN: {framework}: PHL ({phl:.4}s) slower than A* ({astar:.4}s)"
                );
                ok = false;
            }
        }
    }
    if let (Some(gd), Some(ier)) = (at("GD/PHL"), at("IER-kNN/IER-PHL")) {
        if ier > gd {
            eprintln!("[shape] WARN: IER-kNN ({ier:.4}s) slower than GD ({gd:.4}s)");
            ok = false;
        } else {
            println!(
                "[shape] IER-kNN/IER-PHL is {:.1}x faster than GD/PHL at d=0.001",
                gd / ier
            );
        }
    }
    println!(
        "[shape] {}",
        if ok {
            "OK: PHL fastest, A* slowest, IER-kNN dominates GD"
        } else {
            "WARN: some expected orderings did not hold at this scale"
        }
    );
}
