//! Fig. 6: efficiency varying the query-set size `M = |Q|`.
//!
//! Paper claims: larger `M` generally costs more; a dip between the
//! smallest sizes is possible (trade-off between `M` and region sparsity);
//! `APX-sum` grows with `M` (its candidate set is one NN per query point);
//! PHL/GTree and their IER variants stay close together.

use fann_bench::*;
use fann_core::Aggregate;

fn main() {
    let args = Args::parse();
    let cfg = Defaults::from_args(&args);
    let env = cfg.env();
    let sizes = [64usize, 128, 256, 512, 1024];
    let points: Vec<SweepPoint> = sizes
        .into_iter()
        .map(|m| {
            let mut p = SweepPoint::defaults(&cfg, m.to_string());
            p.m = m;
            p
        })
        .collect();
    sweep_tables(&env, &cfg, "6", "M", &points, 6000);

    // Shape: APX-sum cost grows with M.
    let apx = |m: usize| -> Option<f64> {
        run_cell(cfg.budget, cfg.queries, |i| {
            let ctx = make_ctx(
                &env,
                6500 + i as u64,
                cfg.d,
                m,
                cfg.a,
                cfg.c,
                cfg.phi,
                Aggregate::Sum,
            );
            time(|| ctx.run("APX-sum", "PHL")).1
        })
    };
    if let (Some(small), Some(big)) = (apx(sizes[0]), apx(sizes[4])) {
        println!(
            "[shape] APX-sum M=64: {} vs M=1024: {} ({})",
            fmt_secs(Some(small)),
            fmt_secs(Some(big)),
            if big > small {
                "OK: grows with M"
            } else {
                "WARN: did not grow"
            }
        );
    }
}
