//! Scale test: run the index-free FANN_R pipeline on the largest (scaled)
//! Table III datasets — CTR and USA — where the paper reports that only
//! G-tree (of the heavy indexes) is even buildable.
//!
//! The index-free algorithms (`Exact-max`, `APX-sum`, `R-List`) need no
//! preprocessing at all, so they run at any scale; this binary measures
//! them end-to-end on networks of hundreds of thousands of nodes.
//!
//! Usage: `scale_test [--dataset CTR|USA] [--queries N]`

use fann_bench::*;
use fann_core::algo::{apx_sum, exact_max, r_list};
use fann_core::gphi::ine::InePhi;
use fann_core::{Aggregate, FannQuery};
use workload::datasets::by_name;

fn main() {
    let args = Args::parse();
    let name = args.get_str("dataset", "CTR");
    let queries: usize = args.get("queries", 3);
    let spec = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown dataset {name}");
        std::process::exit(1);
    });
    eprintln!(
        "[scale] generating {} (~{} nodes)...",
        spec.name, spec.target_nodes
    );
    let (g, gen_secs) = time(|| spec.load());
    println!(
        "dataset {}: {} nodes, {} edges (generated in {:.1}s, zero index build)",
        spec.name,
        g.num_nodes(),
        g.num_edges(),
        gen_secs
    );

    let header: Vec<String> = ["algorithm", "agg", "mean/query"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for (algo_name, agg) in [
        ("Exact-max", Aggregate::Max),
        ("R-List(INE)", Aggregate::Max),
        ("APX-sum(INE)", Aggregate::Sum),
    ] {
        let mut times = Vec::new();
        for i in 0..queries {
            let mut rng = workload::rng(777 + i as u64);
            let p = workload::points::uniform_data_points(&g, 0.001, &mut rng);
            let q = workload::points::uniform_query_points(&g, 64, 0.10, &mut rng);
            let query = FannQuery::new(&p, &q, 0.5, agg);
            let (ans, secs) = time(|| match algo_name {
                "Exact-max" => exact_max(&g, &query),
                "R-List(INE)" => r_list(&g, &query, &InePhi::new(&g, &q)),
                "APX-sum(INE)" => apx_sum(&g, &query, &InePhi::new(&g, &q)),
                _ => unreachable!(),
            });
            assert!(ans.is_some(), "{algo_name} found no answer");
            times.push(secs);
        }
        let (mean, _) = mean_std(&times);
        rows.push(vec![
            algo_name.to_string(),
            agg.to_string(),
            fmt_secs(Some(mean)),
        ]);
    }
    print_table(
        &format!(
            "Scale test: index-free FANN_R on {} ({} nodes)",
            spec.name,
            g.num_nodes()
        ),
        &header,
        &rows,
    );
    println!("[shape] all index-free algorithms answer at this scale with zero preprocessing");
}
