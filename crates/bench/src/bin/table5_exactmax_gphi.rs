//! Table V: efficiency of `Exact-max` under different `g_phi`
//! implementations, varying `d`.
//!
//! Paper claims: unlike `GD` (Fig. 3), the choice of `g_phi` has little
//! influence on `Exact-max` — it calls `g_phi` exactly once (line 8 of
//! Algorithm 2); `Exact-max` beats GD by orders of magnitude even with the
//! slowest backend.

use fann_bench::*;
use fann_core::Aggregate;

fn main() {
    let args = Args::parse();
    let cfg = Defaults::from_args(&args);
    let env = cfg.env();
    let densities = [0.0001, 0.001, 0.01, 0.1, 1.0];
    let header: Vec<String> = std::iter::once("g_phi".to_string())
        .chain(densities.iter().map(|d| format!("d={d}")))
        .collect();
    let mut rows = Vec::new();
    let mut spread: Vec<f64> = Vec::new();
    for gphi in GPHI_NAMES {
        let mut row = vec![gphi.to_string()];
        for (di, &d) in densities.iter().enumerate() {
            let secs = run_cell(cfg.budget, cfg.queries, |i| {
                let ctx = make_ctx(
                    &env,
                    13_000 + i as u64,
                    d,
                    cfg.m,
                    cfg.a,
                    cfg.c,
                    cfg.phi,
                    Aggregate::Max,
                );
                time(|| ctx.run("Exact-max-gphi", gphi)).1
            });
            if di == 1 {
                if let Some(s) = secs {
                    spread.push(s);
                }
            }
            row.push(fmt_secs(secs));
        }
        rows.push(row);
    }
    print_table(
        "Table V: Exact-max with different g_phi, varying d",
        &header,
        &rows,
    );

    if spread.len() >= 2 {
        let max = spread.iter().cloned().fold(f64::MIN, f64::max);
        let min = spread.iter().cloned().fold(f64::MAX, f64::min);
        println!(
            "[shape] at d=0.001 the g_phi choice changes Exact-max by only {:.2}x \
             (paper: little influence; compare Fig. 3's {}x+ spreads)",
            max / min,
            100
        );
    }
}
