//! Fig. 12: real-world POIs — (a) query efficiency and (b) APX-sum
//! approximation quality with `P ∈ {FF, PO}` and `Q ∈ {HOS, UNI}`
//! (Table IV densities; synthetic POI substitution per DESIGN.md §5).
//!
//! Paper claims: behaviour matches the synthetic-data evaluation; the
//! APX-sum ratio stays below 1.1 on POIs.

use fann_bench::*;
use fann_core::algo::{apx_sum, gd};
use fann_core::Aggregate;
use workload::poi::{generate_poi, PoiKind};

fn main() {
    let args = Args::parse();
    let cfg = Defaults::from_args(&args);
    let env = cfg.env();
    let p_kinds = [PoiKind::FastFood, PoiKind::PostOffices];
    let q_kinds = [PoiKind::Hospitals, PoiKind::Universities];

    // (a) Efficiency per algorithm per combo.
    let header: Vec<String> = std::iter::once("algorithm".to_string())
        .chain(p_kinds.iter().flat_map(|pk| {
            q_kinds
                .iter()
                .map(move |qk| format!("{}/{}", pk.code(), qk.code()))
        }))
        .collect();
    let mut rows = Vec::new();
    for (algo, gphi) in ALL_ALGOS {
        let agg = if algo == "APX-sum" {
            Aggregate::Sum
        } else {
            Aggregate::Max
        };
        let mut row = vec![format!("{algo}({gphi})")];
        for pk in p_kinds {
            for qk in q_kinds {
                let secs = run_cell(cfg.budget, cfg.queries, |i| {
                    let mut rng = workload::rng(12_000 + i as u64);
                    let p = generate_poi(&env.graph, pk, &mut rng);
                    let q = generate_poi(&env.graph, qk, &mut rng);
                    let ctx = QueryCtx::new(&env, p, q, cfg.phi, agg);
                    time(|| ctx.run(algo, gphi)).1
                });
                row.push(fmt_secs(secs));
            }
        }
        rows.push(row);
    }
    print_table(
        "Fig. 12(a): efficiency on POIs (P/Q combos)",
        &header,
        &rows,
    );

    // (b) APX-sum ratio per combo.
    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    for pk in p_kinds {
        for qk in q_kinds {
            let mut ratios = Vec::new();
            for i in 0..cfg.queries.max(3) {
                let mut rng = workload::rng(12_500 + i as u64);
                let p = generate_poi(&env.graph, pk, &mut rng);
                let q = generate_poi(&env.graph, qk, &mut rng);
                let ctx = QueryCtx::new(&env, p, q, cfg.phi, Aggregate::Sum);
                let query = ctx.query();
                let gphi = ctx.gphi("PHL");
                if let (Some(a), Some(e)) = (
                    apx_sum(&env.graph, &query, gphi.as_ref()),
                    gd(&query, gphi.as_ref()),
                ) {
                    ratios.push(a.dist as f64 / e.dist.max(1) as f64);
                }
            }
            let (mean, std) = mean_std(&ratios);
            worst = worst.max(mean);
            rows.push(vec![
                format!("{}/{}", pk.code(), qk.code()),
                format!("{mean:.4}"),
                format!("{std:.4}"),
            ]);
        }
    }
    print_table(
        "Fig. 12(b): APX-sum ratio on POIs",
        &["P/Q".to_string(), "ratio".to_string(), "stddev".to_string()],
        &rows,
    );
    println!(
        "[shape] worst POI ratio {worst:.4} ({}; paper: < 1.1)",
        if worst < 1.1 { "OK" } else { "WARN" }
    );
}
