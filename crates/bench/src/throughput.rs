//! Batch/throughput harness: recycled search state vs per-query
//! construction.
//!
//! Measures a stream of localized FANN_R queries three ways:
//!
//! 1. **Backend level** (INE and A\*): `GD` with a backend constructed
//!    fresh per query vs one long-lived backend rebound per query
//!    ([`fann_core::gphi::ReusableGPhi`] / a persistent oracle scratch).
//!    This isolates the cost the batch layer removes — the `O(|V|)`
//!    membership mask and distance-array setup that per-query
//!    construction pays on every single query.
//! 2. **Engine level**: sequential [`Engine::query`] vs
//!    [`Engine::query_batch`] with 1 and N workers, over a mixed
//!    sum/max stream.
//!
//! Reported per mode: queries/sec, p50/p99 latency (sequential modes),
//! and allocations/query — the latter via [`CountingAlloc`], which the
//! calling binary installs as `#[global_allocator]` (counts read 0 → "n/a"
//! when it is not installed).

use crate::print_table;
use fann_core::algo::gd;
use fann_core::engine::{BatchQuery, BatchReport, Engine};
use fann_core::gphi::ine::InePhi;
use fann_core::gphi::oracle::AStarOracle;
use fann_core::gphi::scan::ScanPhi;
use fann_core::gphi::ReusableGPhi;
use fann_core::{Aggregate, FannQuery};
use rand::seq::SliceRandom;
use rand::Rng;
use roadnet::{DijkstraIter, Graph, LowerBound, NodeId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Allocation-counting wrapper around the system allocator. Install in a
/// binary with `#[global_allocator]` to make [`allocation_count`] live.
pub struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers all allocation to `System`; only adds a relaxed counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Heap allocations since process start (0 unless [`CountingAlloc`] is the
/// global allocator).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Knobs for [`run_throughput`].
pub struct ThroughputOpts {
    /// Nodes of the synthetic road network.
    pub nodes: usize,
    /// Queries in the stream.
    pub queries: usize,
    /// Candidate data points per query (`|P|`).
    pub p_size: usize,
    /// Query points per query (`|Q|`).
    pub q_size: usize,
    /// Flexibility.
    pub phi: f64,
    /// Workers for the parallel batch run (0 = available parallelism).
    pub workers: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ThroughputOpts {
    fn default() -> Self {
        ThroughputOpts {
            nodes: 200_000,
            queries: 300,
            p_size: 6,
            q_size: 4,
            phi: 0.5,
            workers: 0,
            seed: 0xBA7C4,
        }
    }
}

/// One measured mode.
#[derive(Debug, Clone)]
pub struct ModeStats {
    pub label: String,
    pub qps: f64,
    /// Per-query latency percentiles in microseconds; `NaN` for parallel
    /// modes (individual latencies are not observable from outside).
    pub p50_us: f64,
    pub p99_us: f64,
    /// `NaN` when the counting allocator is not installed.
    pub allocs_per_query: f64,
}

/// Everything [`run_throughput`] measured, for shape checks.
pub struct ThroughputReport {
    pub ine_fresh: ModeStats,
    pub ine_reused: ModeStats,
    pub astar_fresh: ModeStats,
    pub astar_reused: ModeStats,
    pub engine_seq: ModeStats,
    pub engine_batch1: ModeStats,
    pub engine_batch_n: ModeStats,
    /// The instrumented pass ([`Engine::query_batch_traced`], one worker),
    /// so the table shows what tracing costs relative to `engine_batch1`.
    pub engine_traced: ModeStats,
    /// Per-strategy work counters + latency histograms from the traced
    /// pass; answers are asserted identical to the untraced batch.
    pub traced: BatchReport,
    pub batch_workers: usize,
}

/// Draw a stream of *localized* queries: each query picks a random center
/// and samples `P` and `Q` from the ~`ball` network-nearest nodes — the
/// realistic FANN_R shape (nearby facilities, nearby users) under which
/// per-query `O(|V|)` setup dominates the actual search work.
pub fn make_stream(g: &Graph, opts: &ThroughputOpts) -> Vec<BatchQuery> {
    let mut rng = workload::rng(opts.seed);
    let ball = 12 * (opts.p_size + opts.q_size);
    (0..opts.queries)
        .map(|i| {
            // Resample the center if it lands in a pocket too small to
            // host both point sets (synthetic networks can drop edges).
            let mut near: Vec<NodeId> = Vec::new();
            while near.len() < opts.p_size + opts.q_size {
                let center = rng.gen_range(0..g.num_nodes() as u32);
                near = DijkstraIter::new(g, center)
                    .take(ball)
                    .map(|(v, _)| v)
                    .collect();
            }
            near.shuffle(&mut rng);
            let p: Vec<NodeId> = near.iter().copied().take(opts.p_size).collect();
            let q: Vec<NodeId> = near
                .iter()
                .copied()
                .skip(opts.p_size)
                .take(opts.q_size)
                .collect();
            let agg = if i % 2 == 0 {
                Aggregate::Max
            } else {
                Aggregate::Sum
            };
            BatchQuery::new(p, q, opts.phi, agg)
        })
        .collect()
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

/// Time `one(i)` for every query index, collecting per-query latency.
fn measure_sequential(label: &str, n: usize, mut one: impl FnMut(usize)) -> ModeStats {
    let allocs0 = allocation_count();
    let mut lat_us = Vec::with_capacity(n);
    let t0 = Instant::now();
    for i in 0..n {
        let q0 = Instant::now();
        one(i);
        lat_us.push(q0.elapsed().as_secs_f64() * 1e6);
    }
    let total = t0.elapsed().as_secs_f64();
    let allocs = allocation_count() - allocs0;
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    ModeStats {
        label: label.to_string(),
        qps: n as f64 / total,
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
        allocs_per_query: if allocation_count() == 0 {
            f64::NAN
        } else {
            allocs as f64 / n as f64
        },
    }
}

/// Time one opaque run covering all `n` queries (parallel modes).
fn measure_bulk(label: &str, n: usize, run: impl FnOnce()) -> ModeStats {
    let allocs0 = allocation_count();
    let t0 = Instant::now();
    run();
    let total = t0.elapsed().as_secs_f64();
    let allocs = allocation_count() - allocs0;
    ModeStats {
        label: label.to_string(),
        qps: n as f64 / total,
        p50_us: f64::NAN,
        p99_us: f64::NAN,
        allocs_per_query: if allocation_count() == 0 {
            f64::NAN
        } else {
            allocs as f64 / n as f64
        },
    }
}

fn fann_query(bq: &BatchQuery) -> FannQuery<'_> {
    FannQuery {
        p: &bq.p,
        q: &bq.q,
        phi: bq.phi,
        agg: bq.agg,
    }
}

fn fmt_stat(s: &ModeStats) -> Vec<String> {
    let us = |v: f64| {
        if v.is_nan() {
            "-".to_string()
        } else {
            format!("{v:.1}us")
        }
    };
    vec![
        s.label.clone(),
        format!("{:.0}", s.qps),
        us(s.p50_us),
        us(s.p99_us),
        if s.allocs_per_query.is_nan() {
            "n/a".to_string()
        } else {
            format!("{:.1}", s.allocs_per_query)
        },
    ]
}

/// Run the full throughput comparison, print the table, return the numbers.
///
/// # Panics
/// If `opts.queries == 0` or `opts.nodes < 4` (nothing to measure).
pub fn run_throughput(opts: &ThroughputOpts) -> ThroughputReport {
    assert!(opts.queries > 0, "need at least one query to measure");
    assert!(opts.nodes >= 4, "need at least 4 nodes, got {}", opts.nodes);
    let graph = workload::synth::road_network(opts.nodes, &mut workload::rng(opts.seed ^ 0x51ED));
    eprintln!(
        "[throughput] graph: {} nodes, {} edges; {} queries, |P|={}, |Q|={}, phi={}",
        graph.num_nodes(),
        graph.num_edges(),
        opts.queries,
        opts.p_size,
        opts.q_size,
        opts.phi,
    );
    let stream = make_stream(&graph, opts);
    let n = stream.len();
    let lb = LowerBound::for_graph(&graph);

    // -- Backend level: GD with INE --------------------------------------
    let ine_fresh = measure_sequential("GD/INE fresh backend", n, |i| {
        let bq = &stream[i];
        let backend = InePhi::new(&graph, &bq.q);
        gd(&fann_query(bq), &backend);
    });
    let mut ine = InePhi::new(&graph, &stream[0].q);
    let ine_reused = measure_sequential("GD/INE reused backend", n, |i| {
        let bq = &stream[i];
        ine.rebind(&bq.q);
        gd(&fann_query(bq), &ine);
    });

    // -- Backend level: GD with A* ---------------------------------------
    let astar_fresh = measure_sequential("GD/A* fresh backend", n, |i| {
        let bq = &stream[i];
        let backend = ScanPhi::new(AStarOracle::with_lb(&graph, lb), &bq.q);
        gd(&fann_query(bq), &backend);
    });
    let oracle = AStarOracle::with_lb(&graph, lb);
    let astar_reused = measure_sequential("GD/A* reused backend", n, |i| {
        let bq = &stream[i];
        let backend = ScanPhi::new(&oracle, &bq.q);
        gd(&fann_query(bq), &backend);
    });

    // -- Engine level ----------------------------------------------------
    let engine = Engine::new(&graph);
    let engine_seq = measure_sequential("Engine::query sequential", n, |i| {
        let bq = &stream[i];
        engine
            .query(&bq.p, &bq.q, bq.phi, bq.agg)
            .expect("stream queries are valid");
    });
    let engine_batch1 = measure_bulk("Engine::query_batch w=1", n, || {
        engine.query_batch(&stream, 1);
    });
    let batch_workers = engine.batch_runner(opts.workers).workers();
    let engine_batch_n = measure_bulk(&format!("Engine::query_batch w={batch_workers}"), n, || {
        engine.query_batch(&stream, opts.workers);
    });

    // -- Instrumented pass: identical answers + per-strategy counters -----
    let mut traced_results = Vec::new();
    let mut traced = BatchReport::default();
    let engine_traced = measure_bulk("Engine::query_batch_traced w=1", n, || {
        let (r, b) = engine.query_batch_traced(&stream, 1);
        traced_results = r;
        traced = b;
    });
    let plain = engine.query_batch(&stream, 1);
    for (i, (a, b)) in plain.iter().zip(traced_results.iter()).enumerate() {
        let a = a.as_ref().expect("stream queries are valid");
        let b = b.as_ref().expect("stream queries are valid");
        assert_eq!(
            a.as_ref().map(|x| (x.p_star, x.dist)),
            b.as_ref().map(|x| (x.p_star, x.dist)),
            "traced answer diverged from untraced at query {i}"
        );
    }

    let report = ThroughputReport {
        ine_fresh,
        ine_reused,
        astar_fresh,
        astar_reused,
        engine_seq,
        engine_batch1,
        engine_batch_n,
        engine_traced,
        traced,
        batch_workers,
    };
    let header: Vec<String> = ["mode", "q/s", "p50", "p99", "allocs/query"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<String>> = [
        &report.ine_fresh,
        &report.ine_reused,
        &report.astar_fresh,
        &report.astar_reused,
        &report.engine_seq,
        &report.engine_batch1,
        &report.engine_batch_n,
        &report.engine_traced,
    ]
    .iter()
    .map(|s| fmt_stat(s))
    .collect();
    print_table(
        "batch throughput: recycled scratch vs per-query setup",
        &header,
        &rows,
    );
    println!(
        "speedup (reused/fresh): INE {:.2}x, A* {:.2}x; batch w={} vs sequential {:.2}x",
        report.ine_reused.qps / report.ine_fresh.qps,
        report.astar_reused.qps / report.astar_fresh.qps,
        report.batch_workers,
        report.engine_batch_n.qps / report.engine_seq.qps,
    );
    println!("per-strategy work (traced pass, answers verified against untraced):");
    for (s, r) in report.traced.active() {
        println!("  {:<12} n={:<4} {}", s.name(), r.queries, r.stats);
        println!("  {:<12} {}", "", r.latency);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_valid_and_deterministic() {
        let opts = ThroughputOpts {
            nodes: 600,
            queries: 10,
            ..Default::default()
        };
        let g = workload::synth::road_network(opts.nodes, &mut workload::rng(opts.seed ^ 0x51ED));
        let a = make_stream(&g, &opts);
        let b = make_stream(&g, &opts);
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.p, y.p);
            assert_eq!(x.q, y.q);
            assert!(!x.p.is_empty() && !x.q.is_empty());
        }
    }

    #[test]
    fn percentile_picks_ends() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!(percentile(&[], 0.5).is_nan());
    }
}
