//! Shared harness for the evaluation experiments (§VI).
//!
//! Each `src/bin/figN_*.rs` binary regenerates one figure/table of the
//! paper: it prepares an [`Env`] (graph + indexes), draws workloads with
//! the §VI-A generators, runs the algorithms under test with a per-cell
//! time budget (cells that exceed it are reported as `DNF`, mirroring the
//! paper's "Baseline cannot finish within a reasonable time"), and prints
//! the same rows/series the paper plots. Absolute numbers differ from the
//! paper's dual-Xeon testbed; the *shape* (who wins, by what factor, where
//! crossovers fall) is asserted by each binary's shape checks and recorded
//! in EXPERIMENTS.md.

pub mod throughput;

use fann_core::algo::{apx_sum, exact_max, gd, ier_knn, r_list};
use fann_core::gphi::gtree_knn::GTreeKnnPhi;
use fann_core::gphi::ier2::IerPhi;
use fann_core::gphi::ine::InePhi;
use fann_core::gphi::oracle::{AStarOracle, GTreeOracle, LabelOracle};
use fann_core::gphi::scan::ScanPhi;
use fann_core::gphi::GPhi;
use fann_core::{Aggregate, FannAnswer, FannQuery};
use gtree::{GTree, GTreeParams};
use hublabel::HubLabels;
use roadnet::{Graph, LowerBound, NodeId};
use spatial_rtree::RTree;
use std::collections::HashMap;
use std::time::Instant;

/// A prepared experiment environment: the road network plus every road
/// network index the backends need (Table I).
pub struct Env {
    pub graph: Graph,
    pub lb: LowerBound,
    pub labels: HubLabels,
    pub gtree: GTree,
}

impl Env {
    /// Build all indexes over `graph`.
    pub fn prepare(graph: Graph, gtree_leaf_cap: usize) -> Self {
        let lb = LowerBound::for_graph(&graph);
        let labels = HubLabels::build(&graph);
        let gtree = GTree::build_with_params(
            &graph,
            GTreeParams {
                fanout: 4,
                leaf_cap: gtree_leaf_cap,
            },
        );
        Env {
            graph,
            lb,
            labels,
            gtree,
        }
    }
}

/// The `g_phi` backend names of Table I, in the paper's legend order.
pub const GPHI_NAMES: [&str; 7] = [
    "A*",
    "IER-A*",
    "INE",
    "PHL",
    "IER-PHL",
    "GTree",
    "IER-GTree",
];

/// One workload instance plus the per-workload index (R-tree over `P`).
pub struct QueryCtx<'e> {
    pub env: &'e Env,
    pub p: Vec<NodeId>,
    pub q: Vec<NodeId>,
    pub phi: f64,
    pub agg: Aggregate,
    pub rtree_p: RTree<NodeId>,
}

impl<'e> QueryCtx<'e> {
    pub fn new(env: &'e Env, p: Vec<NodeId>, q: Vec<NodeId>, phi: f64, agg: Aggregate) -> Self {
        let rtree_p = fann_core::algo::ier::build_p_rtree(&env.graph, &p);
        QueryCtx {
            env,
            p,
            q,
            phi,
            agg,
            rtree_p,
        }
    }

    pub fn query(&self) -> FannQuery<'_> {
        FannQuery::new(&self.p, &self.q, self.phi, self.agg)
    }

    /// Instantiate a `g_phi` backend by Table I name.
    pub fn gphi(&self, name: &str) -> Box<dyn GPhi + '_> {
        let g = &self.env.graph;
        match name {
            "INE" => Box::new(InePhi::new(g, &self.q)),
            "A*" => Box::new(ScanPhi::new(AStarOracle::with_lb(g, self.env.lb), &self.q)),
            "PHL" => Box::new(ScanPhi::new(
                LabelOracle {
                    labels: &self.env.labels,
                },
                &self.q,
            )),
            "GTree" => Box::new(GTreeKnnPhi::new(&self.env.gtree, g, &self.q)),
            "IER-A*" => Box::new(IerPhi::new(
                g,
                AStarOracle::with_lb(g, self.env.lb),
                &self.q,
            )),
            "IER-PHL" => Box::new(IerPhi::new(
                g,
                LabelOracle {
                    labels: &self.env.labels,
                },
                &self.q,
            )),
            "IER-GTree" => Box::new(IerPhi::new(
                g,
                GTreeOracle {
                    tree: &self.env.gtree,
                    graph: g,
                },
                &self.q,
            )),
            other => panic!("unknown g_phi backend '{other}'"),
        }
    }

    /// Run a FANN_R algorithm by name. `gphi_name` selects the backend for
    /// algorithms that take one (ignored by the pure `Exact-max`).
    pub fn run(&self, algo: &str, gphi_name: &str) -> Option<FannAnswer> {
        let query = self.query();
        match algo {
            "GD" => gd(&query, self.gphi(gphi_name).as_ref()),
            "R-List" => r_list(&self.env.graph, &query, self.gphi(gphi_name).as_ref()),
            "IER-kNN" => ier_knn(
                &self.env.graph,
                &query,
                &self.rtree_p,
                self.gphi(gphi_name).as_ref(),
            ),
            "Exact-max" => exact_max(&self.env.graph, &query),
            "Exact-max-gphi" => fann_core::algo::exact_max_with_gphi(
                &self.env.graph,
                &query,
                self.gphi(gphi_name).as_ref(),
            ),
            "APX-sum" => apx_sum(&self.env.graph, &query, self.gphi(gphi_name).as_ref()),
            other => panic!("unknown algorithm '{other}'"),
        }
    }
}

/// The "all algorithms" panel of Figs. 4(a)–8(b): `(algo, gphi)` pairs.
/// PHL-backed, as the paper states for the latter experiments.
pub const ALL_ALGOS: [(&str, &str); 5] = [
    ("GD", "PHL"),
    ("R-List", "PHL"),
    ("IER-kNN", "IER-PHL"),
    ("Exact-max", "PHL"),
    ("APX-sum", "PHL"),
];

/// Wall-clock one closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Mean and (population) standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

/// Run `queries` workload draws of one experiment cell, respecting a total
/// time budget. Returns the mean seconds per query, or `None` (DNF) when
/// the first query alone blows the budget or nothing completed.
pub fn run_cell(
    budget_secs: f64,
    queries: usize,
    mut one_query: impl FnMut(usize) -> f64,
) -> Option<f64> {
    let mut spent = 0.0;
    let mut times = Vec::new();
    for i in 0..queries {
        if i > 0 && spent + spent / i as f64 > budget_secs {
            break; // projected overrun: report what we have
        }
        let t = one_query(i);
        spent += t;
        times.push(t);
        if spent > budget_secs {
            break;
        }
    }
    if times.is_empty() || (times.len() == 1 && spent > budget_secs) {
        return None;
    }
    Some(times.iter().sum::<f64>() / times.len() as f64)
}

/// Format seconds like the paper's axes (log-scale friendly).
pub fn fmt_secs(s: Option<f64>) -> String {
    match s {
        None => "DNF".to_string(),
        Some(s) if s < 1e-3 => format!("{:.1}us", s * 1e6),
        Some(s) if s < 1.0 => format!("{:.2}ms", s * 1e3),
        Some(s) => format!("{s:.3}s"),
    }
}

/// Format byte counts.
pub fn fmt_bytes(b: usize) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    }
}

/// Print an aligned table: header row + data rows.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        let empty = String::new();
        for (i, w) in widths.iter().enumerate() {
            let c = cells.get(i).unwrap_or(&empty);
            s.push_str(&format!("{:<w$}  ", c, w = w));
        }
        println!("{}", s.trim_end());
    };
    line(header);
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * ncols));
    for row in rows {
        line(row);
    }
}

/// Minimal `--key value` CLI parsing (no external deps).
pub struct Args {
    map: HashMap<String, String>,
}

impl Args {
    pub fn parse() -> Self {
        let mut map = HashMap::new();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let val = it.next().unwrap_or_else(|| "true".to_string());
                map.insert(key.to_string(), val);
            }
        }
        Args { map }
    }

    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.map
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.map
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    pub fn flag(&self, key: &str) -> bool {
        self.map.get(key).map(String::as_str) == Some("true")
    }
}

/// Common experiment defaults (§VI-A), scaled per DESIGN.md §5.
pub struct Defaults {
    /// Number of graph nodes for the default (NW-scaled) network.
    pub nodes: usize,
    /// Density of `P`.
    pub d: f64,
    /// Coverage ratio of `Q`.
    pub a: f64,
    /// Size of `Q`.
    pub m: usize,
    /// Clusters of `Q` (1 = uniform).
    pub c: usize,
    /// Flexibility.
    pub phi: f64,
    /// Queries averaged per cell (paper: 100).
    pub queries: usize,
    /// Per-cell time budget in seconds.
    pub budget: f64,
    /// G-tree leaf capacity.
    pub leaf_cap: usize,
}

impl Defaults {
    /// Small configuration for Criterion micro-benches: a ~1500-node
    /// network keeps every group under a few seconds while preserving the
    /// relative ordering of the backends.
    pub fn small() -> Self {
        Defaults {
            nodes: 1_500,
            d: 0.01,
            a: 0.10,
            m: 32,
            c: 1,
            phi: 0.5,
            queries: 1,
            budget: 5.0,
            leaf_cap: 32,
        }
    }

    /// Read defaults, overridable from the command line.
    pub fn from_args(args: &Args) -> Self {
        Defaults {
            nodes: args.get("nodes", 16_000),
            d: args.get("d", 0.001),
            a: args.get("a", 0.10),
            m: args.get("m", 64),
            c: args.get("c", 1),
            phi: args.get("phi", 0.5),
            queries: args.get("queries", 3),
            budget: args.get("budget", 20.0),
            leaf_cap: args.get("leaf-cap", 128),
        }
    }

    /// Build the default environment (synthetic NW-scale network).
    pub fn env(&self) -> Env {
        let graph = workload::synth::road_network(self.nodes, &mut workload::rng(0xFA77));
        eprintln!(
            "[env] graph: {} nodes, {} edges; building hub labels + G-tree...",
            graph.num_nodes(),
            graph.num_edges()
        );
        let (env, secs) = time(|| Env::prepare(graph, self.leaf_cap));
        eprintln!("[env] indexes ready in {:.1}s", secs);
        env
    }
}

/// Draw one workload (P by density `d`, Q by `m`/`a`/`c`) and wrap it in a
/// [`QueryCtx`]. `seed` controls all randomness; increment it per query to
/// average over draws as §VI-A prescribes.
#[allow(clippy::too_many_arguments)]
pub fn make_ctx<'e>(
    env: &'e Env,
    seed: u64,
    d: f64,
    m: usize,
    a: f64,
    c: usize,
    phi: f64,
    agg: Aggregate,
) -> QueryCtx<'e> {
    let mut rng = workload::rng(seed);
    let p = workload::points::uniform_data_points(&env.graph, d, &mut rng);
    let q = if c <= 1 {
        workload::points::uniform_query_points(&env.graph, m, a, &mut rng)
    } else {
        workload::points::clustered_query_points(&env.graph, m, a, c, &mut rng)
    };
    QueryCtx::new(env, p, q, phi, agg)
}

/// One x-axis point of a parameter sweep (Figs. 5–8): the full §VI-A
/// parameter vector with a display label.
#[derive(Clone)]
pub struct SweepPoint {
    pub label: String,
    pub d: f64,
    pub m: usize,
    pub a: f64,
    pub c: usize,
    pub phi: f64,
}

impl SweepPoint {
    /// A point with the defaults of `cfg`, to be customized per sweep.
    pub fn defaults(cfg: &Defaults, label: impl Into<String>) -> Self {
        SweepPoint {
            label: label.into(),
            d: cfg.d,
            m: cfg.m,
            a: cfg.a,
            c: cfg.c,
            phi: cfg.phi,
        }
    }
}

/// Run and print the two-panel sweep shared by Figs. 5–8:
/// (a) IER-kNN per `g_phi` backend, (b) all algorithms. Returns the (a)
/// matrix row-major by `GPHI_NAMES` for shape checks.
pub fn sweep_tables(
    env: &Env,
    cfg: &Defaults,
    fig: &str,
    xname: &str,
    points: &[SweepPoint],
    seed_base: u64,
) -> Vec<Vec<Option<f64>>> {
    let header: Vec<String> = std::iter::once(String::new())
        .chain(points.iter().map(|p| format!("{xname}={}", p.label)))
        .collect();

    // (a) IER-kNN per g_phi.
    let mut matrix = Vec::new();
    let mut rows = Vec::new();
    for gphi in GPHI_NAMES {
        let mut row = vec![gphi.to_string()];
        let mut mrow = Vec::new();
        for (pi, pt) in points.iter().enumerate() {
            let secs = run_cell(cfg.budget, cfg.queries, |i| {
                let ctx = make_ctx(
                    env,
                    seed_base + (pi * 100 + i) as u64,
                    pt.d,
                    pt.m,
                    pt.a,
                    pt.c,
                    pt.phi,
                    Aggregate::Max,
                );
                time(|| ctx.run("IER-kNN", gphi)).1
            });
            mrow.push(secs);
            row.push(fmt_secs(secs));
        }
        matrix.push(mrow);
        rows.push(row);
    }
    print_table(
        &format!("Fig. {fig}(a): IER-kNN by g_phi, varying {xname}"),
        &header,
        &rows,
    );

    // (b) All algorithms.
    let mut rows = Vec::new();
    for (algo, gphi) in ALL_ALGOS {
        let agg = if algo == "APX-sum" {
            Aggregate::Sum
        } else {
            Aggregate::Max
        };
        let mut row = vec![format!("{algo}({gphi})")];
        for (pi, pt) in points.iter().enumerate() {
            let secs = run_cell(cfg.budget, cfg.queries, |i| {
                let ctx = make_ctx(
                    env,
                    seed_base + (pi * 100 + i) as u64,
                    pt.d,
                    pt.m,
                    pt.a,
                    pt.c,
                    pt.phi,
                    agg,
                );
                time(|| ctx.run(algo, gphi)).1
            });
            row.push(fmt_secs(secs));
        }
        rows.push(row);
    }
    print_table(
        &format!("Fig. {fig}(b): all algorithms, varying {xname}"),
        &header,
        &rows,
    );
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert_eq!(m, 3.0);
        assert_eq!(s, 1.0);
        assert!(mean_std(&[]).0.is_nan());
    }

    #[test]
    fn run_cell_respects_budget() {
        // First query alone exceeds the budget: DNF.
        assert_eq!(run_cell(0.5, 5, |_| 1.0), None);
        // All cheap: mean returned.
        assert_eq!(run_cell(10.0, 4, |_| 0.1), Some(0.1));
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_secs(None), "DNF");
        assert!(fmt_secs(Some(0.00001)).ends_with("us"));
        assert!(fmt_secs(Some(0.01)).ends_with("ms"));
        assert!(fmt_secs(Some(2.0)).ends_with('s'));
        assert_eq!(fmt_bytes(512), "512B");
        assert!(fmt_bytes(4096).ends_with("KiB"));
    }

    #[test]
    fn env_and_ctx_smoke() {
        let graph = workload::synth::road_network(400, &mut workload::rng(1));
        let env = Env::prepare(graph, 32);
        let mut rng = workload::rng(2);
        let p = workload::points::uniform_data_points(&env.graph, 0.1, &mut rng);
        let q = workload::points::uniform_query_points(&env.graph, 8, 0.5, &mut rng);
        let ctx = QueryCtx::new(&env, p, q, 0.5, Aggregate::Max);
        let mut dists = Vec::new();
        for name in GPHI_NAMES {
            let a = ctx.run("GD", name).expect("connected");
            dists.push(a.dist);
        }
        assert!(dists.windows(2).all(|w| w[0] == w[1]), "backends disagree");
        let em = ctx.run("Exact-max", "").unwrap();
        assert_eq!(em.dist, dists[0]);
        let rl = ctx.run("R-List", "PHL").unwrap();
        assert_eq!(rl.dist, dists[0]);
        let ier = ctx.run("IER-kNN", "IER-PHL").unwrap();
        assert_eq!(ier.dist, dists[0]);
    }
}
