//! Ablation bench (DESIGN.md §7): point-to-point oracle comparison —
//! Dijkstra vs A* vs bidirectional vs CH vs hub labels vs G-tree.
//! The spread here is what drives the Fig. 3 backend spread.

use criterion::{criterion_group, criterion_main, Criterion};
use fann_core::gphi::oracle::{
    AStarOracle, BidirOracle, ChOracle, DijkstraOracle, DistanceOracle, GTreeOracle, LabelOracle,
};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let g = workload::synth::road_network(3000, &mut workload::rng(0xD15));
    let hl = hublabel::HubLabels::build(&g);
    let gt = gtree::GTree::build_with_params(
        &g,
        gtree::GTreeParams {
            fanout: 4,
            leaf_cap: 64,
        },
    );
    let ch = ch_index::Ch::build(&g);
    let oracles: Vec<Box<dyn DistanceOracle>> = vec![
        Box::new(DijkstraOracle::new(&g)),
        Box::new(AStarOracle::new(&g)),
        Box::new(BidirOracle { graph: &g }),
        Box::new(LabelOracle { labels: &hl }),
        Box::new(GTreeOracle {
            tree: &gt,
            graph: &g,
        }),
        Box::new(ChOracle { ch: &ch }),
    ];
    // A fixed set of medium/long pairs.
    let n = g.num_nodes() as u32;
    let pairs: Vec<(u32, u32)> = (0..32u32)
        .map(|i| ((i * 97) % n, (i * 53 + n / 2) % n))
        .collect();

    let mut group = c.benchmark_group("oracles/point-to-point");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for o in &oracles {
        group.bench_function(o.name(), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &(s, t) in &pairs {
                    acc = acc.wrapping_add(o.dist(s, t).unwrap_or(0));
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
