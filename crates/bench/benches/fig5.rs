//! Criterion bench for Fig. 5: IER-kNN(IER-PHL) and R-List(PHL) varying
//! the coverage ratio A.

use criterion::{criterion_group, criterion_main, Criterion};
use fann_bench::{make_ctx, Defaults};
use fann_core::Aggregate;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfg = Defaults::small();
    let env = cfg.env();
    for (algo, gphi) in [("IER-kNN", "IER-PHL"), ("R-List", "PHL")] {
        let mut group = c.benchmark_group(format!("fig5/{algo}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(800));
        for a in [0.01, 0.05, 0.10, 0.20] {
            group.bench_function(format!("A={a}"), |b| {
                let ctx = make_ctx(&env, 5, cfg.d, cfg.m, a, cfg.c, cfg.phi, Aggregate::Max);
                b.iter(|| ctx.run(algo, gphi));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
