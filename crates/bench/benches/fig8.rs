//! Criterion bench for Fig. 8: varying the flexibility parameter phi.

use criterion::{criterion_group, criterion_main, Criterion};
use fann_bench::{make_ctx, Defaults};
use fann_core::Aggregate;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfg = Defaults::small();
    let env = cfg.env();
    for (algo, gphi) in [("IER-kNN", "IER-A*"), ("IER-kNN", "A*"), ("R-List", "PHL")] {
        let mut group = c.benchmark_group(format!(
            "fig8/{algo}-{}",
            if gphi.is_empty() { "none" } else { gphi }
        ));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(800));
        for phi in [0.1, 0.5, 1.0] {
            group.bench_function(format!("phi={phi}"), |b| {
                let ctx = make_ctx(&env, 8, cfg.d, cfg.m, cfg.a, cfg.c, phi, Aggregate::Max);
                b.iter(|| ctx.run(algo, gphi));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
