//! Criterion bench for Fig. 4: all algorithms at the default density (a)
//! and the index-free R-List vs Baseline pair (b).

use criterion::{criterion_group, criterion_main, Criterion};
use fann_bench::{make_ctx, Defaults, ALL_ALGOS};
use fann_core::Aggregate;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfg = Defaults::small();
    let env = cfg.env();
    let mut group = c.benchmark_group("fig4a/all-algos");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for (algo, gphi) in ALL_ALGOS {
        let agg = if algo == "APX-sum" {
            Aggregate::Sum
        } else {
            Aggregate::Max
        };
        group.bench_function(format!("{algo}({gphi})"), |b| {
            let ctx = make_ctx(&env, 2, cfg.d, cfg.m, cfg.a, cfg.c, cfg.phi, agg);
            b.iter(|| ctx.run(algo, gphi));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig4b/index-free");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for (label, algo) in [("Baseline(INE)", "GD"), ("R-List(INE)", "R-List")] {
        group.bench_function(label, |b| {
            let ctx = make_ctx(&env, 2, cfg.d, cfg.m, cfg.a, cfg.c, cfg.phi, Aggregate::Max);
            b.iter(|| ctx.run(algo, "INE"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
