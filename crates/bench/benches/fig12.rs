//! Criterion bench for Fig. 12: the POI workloads (P = FF/PO, Q = HOS/UNI).

use criterion::{criterion_group, criterion_main, Criterion};
use fann_bench::{Defaults, QueryCtx, ALL_ALGOS};
use fann_core::Aggregate;
use std::time::Duration;
use workload::poi::{generate_poi, PoiKind};

fn bench(c: &mut Criterion) {
    let cfg = Defaults::small();
    let env = cfg.env();
    let mut group = c.benchmark_group("fig12/poi");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let mut rng = workload::rng(12);
    let p = generate_poi(&env.graph, PoiKind::FastFood, &mut rng);
    let q = generate_poi(&env.graph, PoiKind::Hospitals, &mut rng);
    for (algo, gphi) in ALL_ALGOS {
        let agg = if algo == "APX-sum" {
            Aggregate::Sum
        } else {
            Aggregate::Max
        };
        group.bench_function(format!("FF-HOS/{algo}"), |b| {
            let ctx = QueryCtx::new(&env, p.clone(), q.clone(), cfg.phi, agg);
            b.iter(|| ctx.run(algo, gphi));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
