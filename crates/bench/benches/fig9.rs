//! Criterion bench for Fig. 9: index construction time of G-tree vs the
//! hub-label oracle on the two smallest (scaled) datasets.

use criterion::{criterion_group, criterion_main, Criterion};
use gtree::{GTree, GTreeParams};
use hublabel::HubLabels;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/index-build");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    for spec in workload::datasets::DATASETS.iter().take(2) {
        let g = spec.synthesize_scaled(0.5);
        group.bench_function(format!("gtree/{}", spec.name), |b| {
            b.iter(|| {
                GTree::build_with_params(
                    &g,
                    GTreeParams {
                        fanout: 4,
                        leaf_cap: spec.gtree_leaf_cap,
                    },
                )
            });
        });
        group.bench_function(format!("labels/{}", spec.name), |b| {
            b.iter(|| HubLabels::build(&g));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
