//! Criterion bench for Fig. 3: GD and IER-kNN per g_phi backend at the
//! default density. See `src/bin/fig3_gd_vs_gphi.rs` for the full sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use fann_bench::{make_ctx, Defaults, GPHI_NAMES};
use fann_core::Aggregate;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfg = Defaults::small();
    let env = cfg.env();
    for framework in ["GD", "IER-kNN"] {
        let mut group = c.benchmark_group(format!("fig3/{framework}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(800));
        for gphi in GPHI_NAMES {
            group.bench_function(gphi, |b| {
                let ctx = make_ctx(&env, 1, cfg.d, cfg.m, cfg.a, cfg.c, cfg.phi, Aggregate::Max);
                b.iter(|| ctx.run(framework, gphi));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
