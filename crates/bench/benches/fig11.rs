//! Criterion bench for Fig. 11: APX-sum vs the exact sum answer (the
//! speed side of the quality/speed trade-off; quality itself is measured
//! by `src/bin/fig11_apx_quality.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use fann_bench::{make_ctx, Defaults};
use fann_core::Aggregate;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfg = Defaults::small();
    let env = cfg.env();
    let mut group = c.benchmark_group("fig11/apx-vs-exact");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for d in [0.001, 0.01, 0.1] {
        group.bench_function(format!("APX-sum/d={d}"), |b| {
            let ctx = make_ctx(&env, 11, d, cfg.m, cfg.a, cfg.c, cfg.phi, Aggregate::Sum);
            b.iter(|| ctx.run("APX-sum", "PHL"));
        });
        group.bench_function(format!("exact-GD/d={d}"), |b| {
            let ctx = make_ctx(&env, 11, d, cfg.m, cfg.a, cfg.c, cfg.phi, Aggregate::Sum);
            b.iter(|| ctx.run("GD", "PHL"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
