//! Criterion bench for Table V: Exact-max under each g_phi backend — the
//! backend choice should barely matter (one g_phi call total).

use criterion::{criterion_group, criterion_main, Criterion};
use fann_bench::{make_ctx, Defaults, GPHI_NAMES};
use fann_core::Aggregate;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfg = Defaults::small();
    let env = cfg.env();
    let mut group = c.benchmark_group("table5/exact-max-by-gphi");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for gphi in GPHI_NAMES {
        group.bench_function(gphi, |b| {
            let ctx = make_ctx(
                &env,
                13,
                cfg.d,
                cfg.m,
                cfg.a,
                cfg.c,
                cfg.phi,
                Aggregate::Max,
            );
            b.iter(|| ctx.run("Exact-max-gphi", gphi));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
