//! Criterion bench for Fig. 7: clustered Q, varying the cluster count C.

use criterion::{criterion_group, criterion_main, Criterion};
use fann_bench::{make_ctx, Defaults};
use fann_core::Aggregate;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfg = Defaults::small();
    let env = cfg.env();
    for (algo, gphi) in [("IER-kNN", "IER-PHL"), ("Exact-max", "")] {
        let mut group = c.benchmark_group(format!(
            "fig7/{}",
            if algo == "Exact-max" {
                "Exact-max"
            } else {
                algo
            }
        ));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(800));
        for cl in [1usize, 2, 4, 8] {
            group.bench_function(format!("C={cl}"), |b| {
                let ctx = make_ctx(&env, 7, cfg.d, cfg.m, cfg.a, cl, cfg.phi, Aggregate::Max);
                b.iter(|| ctx.run(algo, gphi));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
