//! Criterion bench for Fig. 6: varying the query-set size M.

use criterion::{criterion_group, criterion_main, Criterion};
use fann_bench::{make_ctx, Defaults};
use fann_core::Aggregate;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfg = Defaults::small();
    let env = cfg.env();
    for (algo, gphi, agg) in [
        ("IER-kNN", "IER-PHL", Aggregate::Max),
        ("APX-sum", "PHL", Aggregate::Sum),
    ] {
        let mut group = c.benchmark_group(format!("fig6/{algo}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(800));
        for m in [16usize, 32, 64, 128] {
            group.bench_function(format!("M={m}"), |b| {
                let ctx = make_ctx(&env, 6, cfg.d, m, cfg.a, cfg.c, cfg.phi, agg);
                b.iter(|| ctx.run(algo, gphi));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
