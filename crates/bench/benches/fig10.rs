//! Criterion bench for Fig. 10: k-FANN_R varying k.

use criterion::{criterion_group, criterion_main, Criterion};
use fann_bench::{make_ctx, Defaults};
use fann_core::algo::topk::{exact_max_topk, gd_topk, ier_topk, rlist_topk};
use fann_core::Aggregate;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfg = Defaults::small();
    let env = cfg.env();
    for algo in ["GD", "R-List", "IER-kNN", "Exact-max"] {
        let mut group = c.benchmark_group(format!("fig10/{algo}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(800));
        for k in [1usize, 5, 10] {
            group.bench_function(format!("k={k}"), |b| {
                let ctx = make_ctx(
                    &env,
                    10,
                    cfg.d,
                    cfg.m,
                    cfg.a,
                    cfg.c,
                    cfg.phi,
                    Aggregate::Max,
                );
                let query = ctx.query();
                b.iter(|| match algo {
                    "GD" => gd_topk(&query, ctx.gphi("PHL").as_ref(), k),
                    "R-List" => rlist_topk(&env.graph, &query, ctx.gphi("PHL").as_ref(), k),
                    "IER-kNN" => ier_topk(
                        &env.graph,
                        &query,
                        &ctx.rtree_p,
                        ctx.gphi("IER-PHL").as_ref(),
                        k,
                    ),
                    "Exact-max" => exact_max_topk(&env.graph, &query, k),
                    _ => unreachable!(),
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
