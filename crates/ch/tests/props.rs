//! Property tests: CH must be exact on arbitrary connected-ish graphs.

use ch_index::Ch;
use proptest::prelude::*;
use roadnet::dijkstra::dijkstra_all;
use roadnet::{Graph, GraphBuilder, INF};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..24, 0usize..24, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_node(i as f64, (i % 5) as f64);
        }
        for v in 1..n as u32 {
            let u = (next() % v as u64) as u32;
            b.add_edge(u, v, 1 + (next() % 40) as u32);
        }
        for _ in 0..extra {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u != v {
                b.add_edge(u, v, 1 + (next() % 40) as u32);
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn ch_matches_dijkstra(g in arb_graph()) {
        let ch = Ch::build(&g);
        for s in 0..g.num_nodes() as u32 {
            let truth = dijkstra_all(&g, s);
            for t in 0..g.num_nodes() as u32 {
                let want = (truth[t as usize] != INF).then_some(truth[t as usize]);
                prop_assert_eq!(ch.distance(s, t), want, "pair {}->{}", s, t);
            }
        }
    }

    #[test]
    fn ranks_are_a_permutation(g in arb_graph()) {
        let ch = Ch::build(&g);
        let mut ranks: Vec<u32> = (0..g.num_nodes() as u32).map(|v| ch.rank(v)).collect();
        ranks.sort_unstable();
        prop_assert_eq!(ranks, (0..g.num_nodes() as u32).collect::<Vec<_>>());
    }
}
