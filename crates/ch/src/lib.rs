//! Contraction hierarchies (CH) for undirected road networks.
//!
//! CH (Geisberger et al. \[18\] in the paper's related work, §II-B) is the
//! classic preprocessing/speedup trade-off between plain Dijkstra and the
//! heavyweight labeling oracles: nodes are *contracted* in importance
//! order, inserting shortcut edges that preserve shortest-path distances
//! among the remaining nodes; queries run a bidirectional Dijkstra that
//! only ever climbs *upward* (towards more important nodes).
//!
//! The paper notes CH "has a low memory overhead, but has to traverse a
//! large number of nodes when objects are dispersed" — this crate exists
//! to make that trade-off measurable in our harness (DESIGN.md §7
//! extension): it plugs into `fann_core` as one more exact
//! [`distance`](Ch::distance) oracle.
//!
//! # Construction
//!
//! Lazy-heap contraction with the standard priority `edge_difference +
//! contracted_neighbors`: pop the candidate with the smallest stale
//! priority, recompute, re-push if no longer minimal, otherwise contract.
//! Shortcut necessity is decided by a budgeted *witness search* (a local
//! Dijkstra that ignores the node being contracted).

pub mod builder;

pub use builder::{Ch, ChParams};

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::dijkstra::dijkstra_all;
    use roadnet::{Graph, GraphBuilder, NodeId, INF};

    pub(crate) fn grid(w: u32, h: u32, wf: impl Fn(u32, u32) -> u32) -> Graph {
        let mut b = GraphBuilder::new();
        for y in 0..h {
            for x in 0..w {
                b.add_node(x as f64, y as f64);
            }
        }
        for y in 0..h {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    b.add_edge(v, v + 1, wf(x, y));
                }
                if y + 1 < h {
                    b.add_edge(v, v + w, wf(y, x + 1));
                }
            }
        }
        b.build()
    }

    fn assert_exact(g: &Graph, ch: &Ch) {
        for s in 0..g.num_nodes() as NodeId {
            let truth = dijkstra_all(g, s);
            for t in 0..g.num_nodes() as NodeId {
                let want = (truth[t as usize] != INF).then_some(truth[t as usize]);
                assert_eq!(ch.distance(s, t), want, "pair {s}->{t}");
            }
        }
    }

    #[test]
    fn exact_on_uniform_grid() {
        let g = grid(6, 5, |_, _| 3);
        let ch = Ch::build(&g);
        assert_exact(&g, &ch);
    }

    #[test]
    fn exact_on_skewed_weights() {
        let g = grid(7, 6, |x, y| 1 + (x * 13 + y * 7) % 9);
        let ch = Ch::build(&g);
        assert_exact(&g, &ch);
    }

    #[test]
    fn exact_on_path_and_star() {
        // Path.
        let mut b = GraphBuilder::new();
        for i in 0..8 {
            b.add_node(i as f64, 0.0);
        }
        for i in 0..7 {
            b.add_edge(i, i + 1, 1 + i % 3);
        }
        let g = b.build();
        assert_exact(&g, &Ch::build(&g));
        // Star.
        let mut b = GraphBuilder::new();
        for i in 0..7 {
            b.add_node(i as f64, 1.0);
        }
        for i in 1..7 {
            b.add_edge(0, i, i);
        }
        let g = b.build();
        assert_exact(&g, &Ch::build(&g));
    }

    #[test]
    fn disconnected_components() {
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_node(i as f64, 0.0);
        }
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 3);
        b.add_edge(3, 4, 1);
        b.add_edge(4, 5, 1);
        let g = b.build();
        let ch = Ch::build(&g);
        assert_exact(&g, &ch);
        assert_eq!(ch.distance(0, 5), None);
    }

    #[test]
    fn single_node_and_self_distance() {
        let mut b = GraphBuilder::new();
        b.add_node(0.0, 0.0);
        let g = b.build();
        let ch = Ch::build(&g);
        assert_eq!(ch.distance(0, 0), Some(0));
    }

    #[test]
    fn stats_reported() {
        let g = grid(8, 8, |x, y| 1 + (x + y) % 4);
        let ch = Ch::build(&g);
        assert_eq!(ch.num_nodes(), 64);
        assert!(ch.num_shortcuts() > 0, "a grid needs shortcuts");
        assert!(ch.memory_bytes() > 0);
    }

    #[test]
    fn witness_budget_zero_still_exact() {
        // With no witness budget every potential shortcut is inserted:
        // slower and bigger, but still correct.
        let g = grid(5, 5, |x, y| 1 + (x * 3 + y) % 5);
        let ch = Ch::build_with_params(
            &g,
            ChParams {
                witness_settle_limit: 0,
            },
        );
        assert_exact(&g, &ch);
    }
}
