//! CH construction and bidirectional upward query.

use roadnet::{Dist, Graph, NodeId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct ChParams {
    /// Max nodes a witness search may settle before giving up (giving up
    /// inserts the shortcut — always safe, possibly redundant).
    pub witness_settle_limit: usize,
}

impl Default for ChParams {
    fn default() -> Self {
        ChParams {
            witness_settle_limit: 60,
        }
    }
}

/// A built contraction hierarchy over an undirected graph.
pub struct Ch {
    /// Contraction rank per node (higher = more important).
    rank: Vec<u32>,
    /// Upward adjacency: for each node, `(neighbor, weight)` with
    /// `rank[neighbor] > rank[node]` — original edges and shortcuts.
    up: Vec<Vec<(NodeId, Dist)>>,
    num_shortcuts: usize,
}

/// Working adjacency during contraction (original edges + shortcuts,
/// with per-pair minimum weight maintained lazily).
struct WorkGraph {
    adj: Vec<Vec<(NodeId, Dist)>>,
    contracted: Vec<bool>,
}

impl WorkGraph {
    fn new(g: &Graph) -> Self {
        let mut adj = vec![Vec::new(); g.num_nodes()];
        for (u, v, w) in g.edges() {
            adj[u as usize].push((v, w as Dist));
            adj[v as usize].push((u, w as Dist));
        }
        WorkGraph {
            adj,
            contracted: vec![false; g.num_nodes()],
        }
    }

    /// Live neighbors of `v` with the minimum weight per neighbor.
    fn live_neighbors(&self, v: NodeId) -> Vec<(NodeId, Dist)> {
        let mut nbrs: Vec<(NodeId, Dist)> = self.adj[v as usize]
            .iter()
            .copied()
            .filter(|&(u, _)| !self.contracted[u as usize])
            .collect();
        nbrs.sort_unstable();
        nbrs.dedup_by(|next, prev| {
            if next.0 == prev.0 {
                prev.1 = prev.1.min(next.1);
                true
            } else {
                false
            }
        });
        nbrs
    }

    fn add_edge(&mut self, u: NodeId, v: NodeId, w: Dist) {
        self.adj[u as usize].push((v, w));
        self.adj[v as usize].push((u, w));
    }

    /// Budgeted witness search: shortest distance from `from` to each
    /// target, avoiding `via` and contracted nodes, capped at `cutoff`
    /// distance and `settle_limit` settled nodes. Returns distances
    /// aligned with `targets` (INF where not proven shorter).
    fn witness(
        &self,
        from: NodeId,
        via: NodeId,
        targets: &[NodeId],
        cutoff: Dist,
        settle_limit: usize,
    ) -> Vec<Dist> {
        let mut out = vec![INF; targets.len()];
        if settle_limit == 0 {
            return out;
        }
        let mut dist: std::collections::HashMap<NodeId, Dist> = std::collections::HashMap::new();
        let mut heap: BinaryHeap<(Reverse<Dist>, NodeId)> = BinaryHeap::new();
        dist.insert(from, 0);
        heap.push((Reverse(0), from));
        let mut settled = 0usize;
        let mut remaining: std::collections::HashSet<NodeId> = targets.iter().copied().collect();
        while let Some((Reverse(d), v)) = heap.pop() {
            if d > *dist.get(&v).unwrap_or(&INF) {
                continue;
            }
            if d > cutoff || settled >= settle_limit || remaining.is_empty() {
                break;
            }
            settled += 1;
            if remaining.remove(&v) {
                let idx = targets.iter().position(|&t| t == v).expect("in targets");
                out[idx] = d;
            }
            for &(t, w) in &self.adj[v as usize] {
                if t == via || self.contracted[t as usize] {
                    continue;
                }
                let nd = d.saturating_add(w);
                let cur = dist.entry(t).or_insert(INF);
                if nd < *cur {
                    *cur = nd;
                    heap.push((Reverse(nd), t));
                }
            }
        }
        out
    }
}

impl Ch {
    /// Build with default parameters.
    pub fn build(g: &Graph) -> Self {
        Self::build_with_params(g, ChParams::default())
    }

    /// Build the hierarchy by lazy-priority contraction.
    pub fn build_with_params(g: &Graph, params: ChParams) -> Self {
        let n = g.num_nodes();
        let mut work = WorkGraph::new(g);
        let mut contracted_neighbors = vec![0u32; n];
        let mut rank = vec![0u32; n];
        let mut num_shortcuts = 0usize;

        // Shortcuts needed to contract `v` right now.
        let simulate = |work: &WorkGraph, v: NodeId| -> Vec<(NodeId, NodeId, Dist)> {
            let nbrs = work.live_neighbors(v);
            let mut shortcuts = Vec::new();
            for (i, &(u, du)) in nbrs.iter().enumerate() {
                let targets: Vec<NodeId> = nbrs[i + 1..].iter().map(|&(t, _)| t).collect();
                if targets.is_empty() {
                    continue;
                }
                let max_through = nbrs[i + 1..]
                    .iter()
                    .map(|&(_, dw)| du.saturating_add(dw))
                    .max()
                    .expect("non-empty");
                let wit = work.witness(u, v, &targets, max_through, params.witness_settle_limit);
                for (j, &(t, dt)) in nbrs[i + 1..].iter().enumerate() {
                    let through = du.saturating_add(dt);
                    if wit[j] > through {
                        shortcuts.push((u, t, through));
                    }
                }
            }
            shortcuts
        };
        let priority = |work: &WorkGraph, cn: &[u32], v: NodeId| -> i64 {
            let deg = work.live_neighbors(v).len() as i64;
            let sc = simulate(work, v).len() as i64;
            // Edge difference + contracted-neighbor spread.
            (sc - deg) * 4 + cn[v as usize] as i64
        };

        let mut heap: BinaryHeap<(Reverse<i64>, NodeId)> = (0..n as NodeId)
            .map(|v| (Reverse(priority(&work, &contracted_neighbors, v)), v))
            .collect();
        let mut next_rank = 0u32;
        while let Some((Reverse(p), v)) = heap.pop() {
            if work.contracted[v as usize] {
                continue;
            }
            // Lazy update: recompute and re-push unless still minimal.
            let cur = priority(&work, &contracted_neighbors, v);
            if cur > p {
                if let Some(&(Reverse(top), _)) = heap.peek() {
                    if cur > top {
                        heap.push((Reverse(cur), v));
                        continue;
                    }
                }
            }
            // Contract v.
            for (u, t, w) in simulate(&work, v) {
                work.add_edge(u, t, w);
                num_shortcuts += 1;
            }
            for (u, _) in work.live_neighbors(v) {
                contracted_neighbors[u as usize] += 1;
            }
            work.contracted[v as usize] = true;
            rank[v as usize] = next_rank;
            next_rank += 1;
        }

        // Upward adjacency: min weight per (node, higher neighbor).
        let mut up: Vec<Vec<(NodeId, Dist)>> = vec![Vec::new(); n];
        for v in 0..n {
            let mut edges: Vec<(NodeId, Dist)> = work.adj[v]
                .iter()
                .copied()
                .filter(|&(t, _)| rank[t as usize] > rank[v])
                .collect();
            edges.sort_unstable();
            edges.dedup_by(|next, prev| {
                if next.0 == prev.0 {
                    prev.1 = prev.1.min(next.1);
                    true
                } else {
                    false
                }
            });
            up[v] = edges;
        }
        Ch {
            rank,
            up,
            num_shortcuts,
        }
    }

    /// Exact shortest-path distance via bidirectional upward search;
    /// `None` when disconnected.
    pub fn distance(&self, s: NodeId, t: NodeId) -> Option<Dist> {
        if s == t {
            return Some(0);
        }
        let fwd = self.upward_dists(s);
        let bwd = self.upward_dists(t);
        let mut best = INF;
        let (small, large) = if fwd.len() <= bwd.len() {
            (&fwd, &bwd)
        } else {
            (&bwd, &fwd)
        };
        for (&v, &df) in small {
            if let Some(&db) = large.get(&v) {
                best = best.min(df.saturating_add(db));
            }
        }
        (best != INF).then_some(best)
    }

    /// Distances from `v` to every node reachable by strictly-upward
    /// paths. Search spaces are tiny (poly-log on road networks).
    fn upward_dists(&self, v: NodeId) -> std::collections::HashMap<NodeId, Dist> {
        let mut dist: std::collections::HashMap<NodeId, Dist> = std::collections::HashMap::new();
        let mut heap: BinaryHeap<(Reverse<Dist>, NodeId)> = BinaryHeap::new();
        dist.insert(v, 0);
        heap.push((Reverse(0), v));
        while let Some((Reverse(d), u)) = heap.pop() {
            if d > dist[&u] {
                continue;
            }
            for &(t, w) in &self.up[u as usize] {
                let nd = d.saturating_add(w);
                let cur = dist.entry(t).or_insert(INF);
                if nd < *cur {
                    *cur = nd;
                    heap.push((Reverse(nd), t));
                }
            }
        }
        dist
    }

    pub fn num_nodes(&self) -> usize {
        self.rank.len()
    }

    /// Shortcut edges inserted during contraction.
    pub fn num_shortcuts(&self) -> usize {
        self.num_shortcuts
    }

    /// Contraction rank of a node (higher = contracted later = more
    /// important).
    pub fn rank(&self, v: NodeId) -> u32 {
        self.rank[v as usize]
    }

    /// Approximate in-memory size of the upward graph.
    pub fn memory_bytes(&self) -> usize {
        self.rank.len() * 4
            + self
                .up
                .iter()
                .map(|e| e.len() * std::mem::size_of::<(NodeId, Dist)>() + 24)
                .sum::<usize>()
    }

    /// Average upward degree — the query-effort indicator.
    pub fn avg_upward_degree(&self) -> f64 {
        if self.up.is_empty() {
            return 0.0;
        }
        self.up.iter().map(Vec::len).sum::<usize>() as f64 / self.up.len() as f64
    }
}
