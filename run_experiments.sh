#!/usr/bin/env bash
# Regenerate every table and figure of the paper's evaluation (section VI).
# Results land in results/. Configurable: --nodes, --queries, --budget, ...
set -u
ARGS="${*:-}"
BINS="fig3_gd_vs_gphi fig4_all_vs_d fig5_vary_a fig6_vary_m fig7_vary_c \
fig8_vary_phi fig9_index_cost fig10_kfann fig11_apx_quality fig12_poi \
table5_exactmax_gphi appendix_index_small appendix_sum_vs_max ablation_ier_bounds \
explain_gphi_calls ablation_label_order"
mkdir -p results
for b in $BINS; do
  echo "=== $b ==="
  cargo run --release -q -p fann-bench --bin "$b" -- $ARGS 2>&1 | tee "results/$b.txt"
done
