//! # fannr — Flexible Aggregate Nearest Neighbor queries in road networks
//!
//! Facade crate re-exporting the full public API of the workspace, a Rust
//! reproduction of *"Flexible Aggregate Nearest Neighbor Queries in Road
//! Networks"* (Yao, Chen, Gao, Shang, Ma, Guo — ICDE 2018).
//!
//! ## Quickstart
//!
//! ```
//! use fannr::prelude::*;
//!
//! // A tiny synthetic road network plus uniformly placed P and Q.
//! let mut rng = fannr::workload::rng(42);
//! let graph = fannr::workload::synth::grid_network(8, 8, 0.2, &mut rng);
//! let p = fannr::workload::points::uniform_data_points(&graph, 0.3, &mut rng);
//! let q = fannr::workload::points::uniform_query_points(&graph, 4, 0.5, &mut rng);
//!
//! // max-FANN_R with phi = 0.5 via the index-free Exact-max algorithm.
//! let query = FannQuery::new(&p, &q, 0.5, Aggregate::Max);
//! assert!(query.validate(&graph).is_ok());
//! let answer = exact_max(&graph, &query).expect("connected network");
//! assert_eq!(answer.subset.len(), query.subset_size());
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the harnesses regenerating the paper's evaluation.

pub use fann_bench as bench;
pub use fann_core as fann;
pub use fannr_router as router;
pub use fannr_serve as serve;
pub use gtree;
pub use hublabel;
pub use roadnet;
pub use spatial_rtree as rtree;
pub use workload;

/// Most-used items in one import.
pub mod prelude {
    pub use fann_core::algo::apx_sum::apx_sum;
    pub use fann_core::algo::exact_max::exact_max;
    pub use fann_core::algo::gd::gd;
    pub use fann_core::algo::ier::ier_knn;
    pub use fann_core::algo::rlist::r_list;
    pub use fann_core::gphi::GPhi;
    pub use fann_core::{Aggregate, FannAnswer, FannQuery};
    pub use roadnet::{Graph, GraphBuilder, NodeId};
}
