//! `fannr` — command-line front end for FANN_R queries.
//!
//! ```text
//! fannr datasets
//! fannr gen   --nodes 10000 --seed 7 --out network.txt
//! fannr index --graph network.txt --out labels.bin
//! fannr query --graph network.txt [--labels labels.bin] \
//!             --algo ier-knn --agg max --phi 0.5 \
//!             --p-density 0.01 --q-size 32 --coverage 0.2 [--k 5] [--routes]
//! ```
//!
//! `query` generates `P`/`Q` with the §VI-A generators (deterministic per
//! `--seed`) and prints the answer; `--routes` additionally materializes
//! the winning shortest paths. `bench-batch` runs the batch/throughput
//! experiment (recycled scratch vs per-query setup, sequential vs
//! `Engine::query_batch`).

use fannr::bench::throughput::{run_throughput, CountingAlloc, ThroughputOpts};
use fannr::fann::algo::ier::build_p_rtree;
use fannr::fann::algo::topk::{exact_max_topk, gd_topk, ier_topk, rlist_topk};
use fannr::fann::algo::{
    apx_sum, apx_sum_traced, exact_max, exact_max_traced, gd, ier_knn, ier_knn_traced, r_list,
    r_list_traced, IerBound,
};
use fannr::fann::engine::{Engine, IndexDirOptions};
use fannr::fann::gphi::ier2::IerPhi;
use fannr::fann::gphi::ine::InePhi;
use fannr::fann::gphi::oracle::LabelOracle;
use fannr::fann::gphi::GPhi;
use fannr::fann::metrics::{SearchStats, StatsSink};
use fannr::fann::{Aggregate, FannAnswer, FannQuery};
use fannr::gtree::{GTree, GTreeParams};
use fannr::hublabel::HubLabels;
use fannr::roadnet::io::{read_compact, write_compact};
use fannr::roadnet::{shortest_path, Graph, ScratchPool, ShardMap};
use fannr::roadnet::{LoadMode, WeightUpdate};
use fannr::router::{Router, RouterConfig};
use fannr::serve::{Body, Client, Op, Request, Response, ServeConfig, Server, ShardRole};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

// Count heap allocations so `bench-batch` can report allocations/query.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = parse_opts(args);
    let result = match cmd.as_str() {
        "datasets" => cmd_datasets(),
        "gen" => cmd_gen(&opts),
        "index" => cmd_index(&opts),
        "query" => cmd_query(&opts),
        "explain" => cmd_explain(&opts),
        "render" => cmd_render(&opts),
        "stats" => cmd_stats(&opts),
        "serve" => cmd_serve(&opts),
        "partition" => cmd_partition(&opts),
        "route" => cmd_route(&opts),
        "update" => cmd_update(&opts),
        "build-index" => cmd_build_index(&opts),
        "bench-batch" => cmd_bench_batch(&opts),
        "bench-coldstart" => cmd_bench_coldstart(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: fannr <command> [--key value ...]
commands:
  datasets   list the Table III dataset registry
  gen        generate a synthetic road network   (--nodes, --seed, --out)
  index      build + persist hub labels          (--graph, --out)
  query      run an FANN_R query                 (--graph, --algo, --agg,
             --phi, --p-density, --q-size, --coverage, --clusters, --seed,
             --labels, --k, --routes, --json)
  explain    run one query through every applicable strategy and print a
             per-strategy work breakdown         (query options; builds
             hub labels in-process unless --labels is given)
  render     draw a query answer as SVG          (query options + --out)
  stats      describe a network                  (--graph)
  serve      serve queries over TCP              (--index DIR | --graph |
             --nodes --seed, --addr, --workers, --queue-depth,
             --deadline-ms, --labels, --cache-capacity,
             --batch-window-ms, --batch-max, --no-mmap,
             --maintain-gtree to keep a live G-tree repaired in place
             under weight updates instead of rebuilding,
             --shard-id N --shard-map FILE for one shard of a
             partitioned deployment);
             with --index, graph.v2 alone suffices: missing labels.v2 /
             gtree.v2 are built in the background and hot-swapped in
  partition  cut a network into shards and write (--graph | --nodes --seed,
             the FANNSM2 shard map                --shards K, --out FILE)
  route      front a set of shard servers with   (--graph | --nodes --seed,
             the phi*M*mdist pruning router       --shard-map FILE,
                                                  --shard-addrs a:p,b:p[,...],
                                                  --addr, --deadline-ms,
                                                  --upstream-timeout-ms)
  update     push live weight updates to a       (--addr, --edges u:v:w[,...],
             running server without a restart     --stream for an
                                                  update_stream segment)
  build-index  build the flat v2 index directory (--graph | --nodes --seed,
             --out DIR, --workers, --fanout, --leaf-cap, --skip-gtree);
             writes graph.v2 + labels.v2 + gtree.v2 for `serve --index`
  bench-batch  measure batch throughput          (--nodes, --queries,
             --p-size, --q-size, --phi, --workers, --seed)
  bench-coldstart  compare v1 decode vs flat v2  (--nodes, --seed, --queries,
             read vs mmap zero-copy load          --q-size, --p-density, --phi,
                                                  --out JSON, --artifacts DIR)
algorithms:  gd | r-list | ier-knn | exact-max | apx-sum";

fn parse_opts(args: impl Iterator<Item = String>) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut it = args.peekable();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            let val = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().expect("peeked"),
                _ => "true".to_string(),
            };
            map.insert(key.to_string(), val);
        }
    }
    map
}

fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    opts.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn require(opts: &HashMap<String, String>, key: &str) -> Result<String, String> {
    opts.get(key)
        .cloned()
        .ok_or_else(|| format!("missing required option --{key}"))
}

fn cmd_datasets() -> Result<(), String> {
    println!(
        "{:<5} {:<14} {:>12} {:>14} {:>6}",
        "name", "description", "paper nodes", "scaled target", "tau"
    );
    for d in &fannr::workload::datasets::DATASETS {
        println!(
            "{:<5} {:<14} {:>12} {:>14} {:>6}",
            d.name, d.description, d.paper_nodes, d.target_nodes, d.gtree_leaf_cap
        );
    }
    println!("\nset ROADNET_DATA_DIR to load the real DIMACS files instead");
    Ok(())
}

fn cmd_gen(opts: &HashMap<String, String>) -> Result<(), String> {
    let nodes: usize = get(opts, "nodes", 10_000);
    let seed: u64 = get(opts, "seed", 7);
    let out = require(opts, "out")?;
    let g = fannr::workload::synth::road_network(nodes, &mut fannr::workload::rng(seed));
    std::fs::write(&out, write_compact(&g)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} nodes, {} edges)",
        out,
        g.num_nodes(),
        g.num_edges()
    );
    Ok(())
}

fn load_graph(opts: &HashMap<String, String>) -> Result<Graph, String> {
    let path = require(opts, "graph")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    read_compact(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_index(opts: &HashMap<String, String>) -> Result<(), String> {
    let g = load_graph(opts)?;
    let out = require(opts, "out")?;
    let t0 = std::time::Instant::now();
    let labels = HubLabels::build(&g);
    let bytes = labels.to_bytes();
    std::fs::write(&out, &bytes).map_err(|e| e.to_string())?;
    println!(
        "built hub labels in {:.1}s: {} entries (avg {:.1}/node), {} bytes -> {}",
        t0.elapsed().as_secs_f64(),
        labels.total_label_entries(),
        labels.avg_label_size(),
        bytes.len(),
        out
    );
    Ok(())
}

fn cmd_query(opts: &HashMap<String, String>) -> Result<(), String> {
    let g = load_graph(opts)?;
    let algo = opts.get("algo").map(String::as_str).unwrap_or("ier-knn");
    let agg = match opts.get("agg").map(String::as_str).unwrap_or("max") {
        "max" => Aggregate::Max,
        "sum" => Aggregate::Sum,
        other => return Err(format!("unknown aggregate '{other}' (max|sum)")),
    };
    let phi: f64 = get(opts, "phi", 0.5);
    let seed: u64 = get(opts, "seed", 1);
    let d: f64 = get(opts, "p-density", 0.01);
    let m: usize = get(opts, "q-size", 32);
    let a: f64 = get(opts, "coverage", 0.2);
    let c: usize = get(opts, "clusters", 1);
    let k: usize = get(opts, "k", 1);

    let mut rng = fannr::workload::rng(seed);
    let p = fannr::workload::points::uniform_data_points(&g, d, &mut rng);
    let q = if c <= 1 {
        fannr::workload::points::uniform_query_points(&g, m, a, &mut rng)
    } else {
        fannr::workload::points::clustered_query_points(&g, m, a, c, &mut rng)
    };
    // --json prints exactly one protocol line on stdout (the same
    // `Response` serializer the server uses), so commentary goes to stderr.
    let json = opts.contains_key("json");
    if json && k > 1 {
        return Err("--json has no top-k form (the wire protocol is single-answer)".to_string());
    }
    let query = FannQuery::checked(&p, &q, phi, agg, &g).map_err(|e| e.to_string())?;
    let info = format!(
        "graph: {} nodes | |P| = {} | |Q| = {} | phi = {phi} ({}) | g = {agg}",
        g.num_nodes(),
        p.len(),
        q.len(),
        query.subset_size()
    );
    if json {
        eprintln!("{info}");
    } else {
        println!("{info}");
    }

    // Backend: persisted labels if provided, else index-free INE.
    let labels = match opts.get("labels") {
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            Some(HubLabels::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    let gphi: Box<dyn GPhi> = match &labels {
        Some(l) => Box::new(IerPhi::new(&g, LabelOracle { labels: l }, &q)),
        None => Box::new(InePhi::new(&g, &q)),
    };
    if json {
        eprintln!("backend: {}", gphi.name());
    } else {
        println!("backend: {}", gphi.name());
    }

    let t0 = std::time::Instant::now();
    if k > 1 {
        let rtree = build_p_rtree(&g, &p);
        let answers = match algo {
            "gd" => gd_topk(&query, gphi.as_ref(), k),
            "r-list" => rlist_topk(&g, &query, gphi.as_ref(), k),
            "ier-knn" => ier_topk(&g, &query, &rtree, gphi.as_ref(), k),
            "exact-max" => exact_max_topk(&g, &query, k),
            other => return Err(format!("'{other}' has no k-FANN variant")),
        };
        println!("top-{k} in {:?}:", t0.elapsed());
        for (rank, (node, dist)) in answers.iter().enumerate() {
            println!("  #{:<2} node {:<8} d = {}", rank + 1, node, dist);
        }
        return Ok(());
    }
    let answer: Option<FannAnswer> = match algo {
        "gd" => gd(&query, gphi.as_ref()),
        "r-list" => r_list(&g, &query, gphi.as_ref()),
        "ier-knn" => {
            let rtree = build_p_rtree(&g, &p);
            ier_knn(&g, &query, &rtree, gphi.as_ref())
        }
        "exact-max" => exact_max(&g, &query),
        "apx-sum" => apx_sum(&g, &query, gphi.as_ref()),
        other => return Err(format!("unknown algorithm '{other}'\n{USAGE}")),
    };
    let elapsed = t0.elapsed();
    if json {
        let resp = Response::for_answer(None, answer.as_ref(), algo, elapsed.as_micros() as u64);
        println!("{}", resp.to_json());
        return Ok(());
    }
    let Some(ans) = answer else {
        println!(
            "no answer: no data point reaches {} query points",
            query.subset_size()
        );
        return Ok(());
    };
    println!(
        "answer in {elapsed:?}: p* = node {}, d* = {}, Q*_phi = {:?}",
        ans.p_star, ans.dist, ans.subset
    );
    if opts.contains_key("routes") {
        for &qn in &ans.subset {
            if let Some((dist, path)) = shortest_path(&g, ans.p_star, qn) {
                println!("  route to {qn} ({dist}): {path:?}");
            }
        }
    }
    Ok(())
}

/// Run the same query through every strategy applicable to its aggregate,
/// with a live recorder, and print one work-breakdown row per strategy.
fn cmd_explain(opts: &HashMap<String, String>) -> Result<(), String> {
    let g = load_graph(opts)?;
    let agg = match opts.get("agg").map(String::as_str).unwrap_or("max") {
        "max" => Aggregate::Max,
        "sum" => Aggregate::Sum,
        other => return Err(format!("unknown aggregate '{other}' (max|sum)")),
    };
    let phi: f64 = get(opts, "phi", 0.5);
    let seed: u64 = get(opts, "seed", 1);
    let mut rng = fannr::workload::rng(seed);
    let p =
        fannr::workload::points::uniform_data_points(&g, get(opts, "p-density", 0.01), &mut rng);
    let q = fannr::workload::points::uniform_query_points(
        &g,
        get(opts, "q-size", 32),
        get(opts, "coverage", 0.2),
        &mut rng,
    );
    let query = FannQuery::checked(&p, &q, phi, agg, &g).map_err(|e| e.to_string())?;
    println!(
        "graph: {} nodes | |P| = {} | |Q| = {} | phi = {phi} (k = {}) | g = {agg}",
        g.num_nodes(),
        p.len(),
        q.len(),
        query.subset_size()
    );

    // The indexed strategy needs labels; load them if given, else build.
    let labels = match opts.get("labels") {
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            HubLabels::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?
        }
        None => {
            let t0 = std::time::Instant::now();
            let l = HubLabels::build(&g);
            println!(
                "(built hub labels in {:.1}s; pass --labels to reuse a persisted index)",
                t0.elapsed().as_secs_f64()
            );
            l
        }
    };
    let rtree = build_p_rtree(&g, &p);

    let strategies: &[&str] = match agg {
        Aggregate::Max => &["Exact-max", "R-List/INE", "IER-kNN/PHL"],
        Aggregate::Sum => &["R-List/INE", "APX-sum/INE", "IER-kNN/PHL"],
    };
    let mut rows: Vec<(&str, std::time::Duration, Option<FannAnswer>, SearchStats)> = Vec::new();
    for &name in strategies {
        let sink = StatsSink::new();
        let t0 = std::time::Instant::now();
        let ans = match name {
            "Exact-max" => exact_max_traced(&g, &query, &mut ScratchPool::new(), &sink),
            "R-List/INE" => {
                let gphi = InePhi::with_recorder(&g, &q, &sink);
                r_list_traced(&g, &query, &gphi, &mut ScratchPool::new(), &sink)
            }
            "APX-sum/INE" => {
                let gphi = InePhi::with_recorder(&g, &q, &sink);
                apx_sum_traced(&g, &query, &gphi, &sink)
            }
            "IER-kNN/PHL" => {
                let gphi = IerPhi::with_recorder(&g, LabelOracle { labels: &labels }, &q, &sink);
                ier_knn_traced(&g, &query, &rtree, &gphi, IerBound::Flexible, &sink)
            }
            _ => unreachable!("strategy list is fixed above"),
        };
        rows.push((name, t0.elapsed(), ans, sink.snapshot()));
    }

    println!(
        "\n{:<12} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7} {:>6} {:>7}",
        "strategy",
        "time",
        "d*",
        "settled",
        "pushes",
        "pops",
        "edges",
        "g_phi",
        "oracle",
        "labels",
        "rtree",
        "pruned"
    );
    for (name, elapsed, ans, s) in &rows {
        let dist = ans.as_ref().map_or("-".to_string(), |a| a.dist.to_string());
        println!(
            "{:<12} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7} {:>6} {:>7}",
            name,
            format!("{:.1?}", elapsed),
            dist,
            s.nodes_settled,
            s.heap_pushes,
            s.heap_pops,
            s.edges_relaxed,
            s.gphi_evals,
            s.oracle_calls,
            s.label_lookups,
            s.rtree_nodes,
            s.candidates_pruned,
        );
    }
    // Exact strategies must agree; APX-sum may legitimately differ.
    let exact_dists: Vec<_> = rows
        .iter()
        .filter(|(name, ..)| *name != "APX-sum/INE")
        .filter_map(|(_, _, ans, _)| ans.as_ref().map(|a| a.dist))
        .collect();
    if exact_dists.windows(2).any(|w| w[0] != w[1]) {
        return Err(format!(
            "exact strategies disagree on d*: {exact_dists:?} (this is a bug)"
        ));
    }
    Ok(())
}

fn cmd_render(opts: &HashMap<String, String>) -> Result<(), String> {
    use fannr::roadnet::svg::SvgScene;
    let g = load_graph(opts)?;
    let out = require(opts, "out")?;
    let agg = match opts.get("agg").map(String::as_str).unwrap_or("max") {
        "max" => Aggregate::Max,
        "sum" => Aggregate::Sum,
        other => return Err(format!("unknown aggregate '{other}' (max|sum)")),
    };
    let phi: f64 = get(opts, "phi", 0.5);
    let seed: u64 = get(opts, "seed", 1);
    let mut rng = fannr::workload::rng(seed);
    let p =
        fannr::workload::points::uniform_data_points(&g, get(opts, "p-density", 0.01), &mut rng);
    let q = fannr::workload::points::uniform_query_points(
        &g,
        get(opts, "q-size", 16),
        get(opts, "coverage", 0.3),
        &mut rng,
    );
    let query = FannQuery::checked(&p, &q, phi, agg, &g).map_err(|e| e.to_string())?;
    let answer = match agg {
        Aggregate::Max => exact_max(&g, &query),
        Aggregate::Sum => r_list(&g, &query, &InePhi::new(&g, &q)),
    };
    let mut scene = SvgScene::new(&g).data_points(&p).query_points(&q);
    if let Some(a) = &answer {
        scene = scene.answer(a.p_star, &a.subset);
        println!("answer: p* = node {}, d* = {}", a.p_star, a.dist);
    } else {
        println!("no answer (insufficient reachability); rendering sets only");
    }
    std::fs::write(&out, scene.render()).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_stats(opts: &HashMap<String, String>) -> Result<(), String> {
    let g = load_graph(opts)?;
    println!("{}", fannr::roadnet::stats::graph_stats(&g));
    Ok(())
}

/// Serve FANN_R queries over TCP until SIGINT/SIGTERM or a wire
/// `shutdown` op, then print the drain summary.
fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    // `--index DIR` cold-starts from a flat v2 index directory: graph.v2
    // (required) and labels.v2 both load zero-copy, mmap-backed unless
    // `--no-mmap`. A directory holding only graph.v2 is enough — the
    // missing labels (and gtree.v2) build on a background thread with the
    // parallel builders and publish through the snapshot swap, while
    // queries answer exactly via the index-free strategies. Otherwise the
    // graph comes from `--graph`/`--nodes` and labels optionally from a
    // v1 `--labels` file.
    let (g, engine) = if let Some(dir) = opts.get("index") {
        let index_opts = IndexDirOptions {
            load_mode: if opts.contains_key("no-mmap") {
                LoadMode::Read
            } else {
                LoadMode::Auto
            },
            background_build: true,
            // `--maintain-gtree` keeps a live G-tree alongside the labels:
            // weight updates repair only the touched leaves' matrices
            // instead of rebuilding, at the cost of the resident tree.
            maintain_gtree: opts.contains_key("maintain-gtree"),
            // `--workers` sizes the serve pool; the background index
            // build always uses every core (workers: 0).
            ..IndexDirOptions::default()
        };
        let engine = Engine::from_index_dir_with(Path::new(dir), &index_opts)
            .map_err(|e| format!("{dir}: {e}"))?;
        if !engine.has_labels() {
            println!("index dir has no labels.v2: serving index-free while labels + G-tree build in the background");
        }
        let g = engine.snapshot().graph().clone();
        (g, engine)
    } else {
        let g = if opts.contains_key("graph") {
            load_graph(opts)?
        } else {
            let nodes: usize = get(opts, "nodes", 10_000);
            let seed: u64 = get(opts, "seed", 7);
            fannr::workload::synth::road_network(nodes, &mut fannr::workload::rng(seed))
        };
        let mut engine = Engine::new(&g);
        if let Some(path) = opts.get("labels") {
            let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            let labels = HubLabels::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
            engine = engine.with_prebuilt_labels(labels);
        }
        if opts.contains_key("maintain-gtree") {
            engine = engine.with_gtree_maintenance(GTreeParams::default(), 0);
        }
        (g, engine)
    };
    // `--shard-id N --shard-map FILE` makes this server one shard of a
    // partitioned deployment: it answers only for its owned slice of P,
    // applies only its owned edges, and reports its region in health.
    let shard = match (opts.get("shard-id"), opts.get("shard-map")) {
        (Some(ids), Some(path)) => {
            let id: u32 = ids.parse().map_err(|_| format!("bad --shard-id '{ids}'"))?;
            let map = ShardMap::read_flat(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
            if id >= map.num_shards() {
                return Err(format!(
                    "--shard-id {id} out of range (map has {} shards)",
                    map.num_shards()
                ));
            }
            if map.num_nodes() as usize != g.num_nodes() {
                return Err(format!(
                    "shard map covers {} nodes but the graph has {}",
                    map.num_nodes(),
                    g.num_nodes()
                ));
            }
            Some(ShardRole {
                id,
                map: Arc::new(map),
            })
        }
        (None, None) => None,
        _ => return Err("--shard-id and --shard-map must be given together".to_string()),
    };
    let shard_banner = match &shard {
        Some(role) => format!(
            ", shard {}/{} ({} owned nodes)",
            role.id,
            role.map.num_shards(),
            role.map.owned_nodes(role.id)
        ),
        None => String::new(),
    };
    let config = ServeConfig {
        addr: opts
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        workers: get(opts, "workers", 2usize),
        queue_depth: get(opts, "queue-depth", 64usize),
        default_deadline: opts
            .get("deadline-ms")
            .and_then(|v| v.parse().ok())
            .map(std::time::Duration::from_millis),
        cache_capacity: get(opts, "cache-capacity", 0usize),
        batch_window: opts
            .get("batch-window-ms")
            .and_then(|v| v.parse().ok())
            .map(std::time::Duration::from_millis),
        batch_max: get(opts, "batch-max", 16usize),
        handle_signals: true,
        shard,
    };
    let server = Server::bind(config).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "serving {} nodes on {addr} ({} workers, queue depth {}, labels: {}, cache: {}, batch window: {}{shard_banner})",
        g.num_nodes(),
        get::<usize>(opts, "workers", 2),
        get::<usize>(opts, "queue-depth", 64),
        if engine.has_labels() { "yes" } else { "no" },
        match get::<usize>(opts, "cache-capacity", 0) {
            0 => "off".to_string(),
            n => format!("{n} entries"),
        },
        match opts.get("batch-window-ms") {
            Some(w) => format!("{w}ms"),
            None => "off".to_string(),
        },
    );
    let summary = server.run(&engine).map_err(|e| e.to_string())?;
    let m = &summary.metrics;
    println!(
        "drained after {:.1}s: {} conns | {} admitted ({} ok, {} empty, {} cancelled, {} errors) | {} shed | p50 {}us p90 {}us p99 {}us",
        summary.uptime.as_secs_f64(),
        summary.connections,
        m.requests,
        m.ok,
        m.empty,
        m.cancelled,
        m.errors,
        m.shed,
        m.latency.p50_ns() / 1_000,
        m.latency.p90_ns() / 1_000,
        m.latency.p99_ns() / 1_000,
    );
    if !m.search.is_empty() {
        println!("search totals: {}", m.search);
    }
    Ok(())
}

/// The graph every partitioned-deployment command shares: `--graph FILE`
/// or the deterministic synthetic network (`--nodes`, `--seed`). Shards,
/// router, and `partition` must all be launched with the same choice.
fn load_graph_or_synth(opts: &HashMap<String, String>) -> Result<Graph, String> {
    if opts.contains_key("graph") {
        load_graph(opts)
    } else {
        let nodes: usize = get(opts, "nodes", 10_000);
        let seed: u64 = get(opts, "seed", 7);
        Ok(fannr::workload::synth::road_network(
            nodes,
            &mut fannr::workload::rng(seed),
        ))
    }
}

/// Cut the network into `--shards` parts along the G-tree's top-level
/// partitioner and persist the shard map (ownership, regions, borders,
/// and the frozen pruning scale) as a flat v2 `FANNSM2` container.
fn cmd_partition(opts: &HashMap<String, String>) -> Result<(), String> {
    let g = load_graph_or_synth(opts)?;
    let shards: usize = get(opts, "shards", 2);
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    if shards > g.num_nodes() {
        return Err(format!(
            "--shards {shards} exceeds the node count {}",
            g.num_nodes()
        ));
    }
    let out = require(opts, "out")?;
    let t0 = Instant::now();
    let cut = fannr::gtree::top_level_cut(&g, shards);
    let map = ShardMap::build(&g, &cut);
    map.write_flat(Path::new(&out)).map_err(|e| e.to_string())?;
    println!(
        "partitioned {} nodes into {} shards in {:.2}s (scale {:.6}) -> {}",
        g.num_nodes(),
        map.num_shards(),
        t0.elapsed().as_secs_f64(),
        map.scale(),
        out
    );
    for s in 0..map.num_shards() {
        let r = map.region(s);
        println!(
            "  shard {s}: {:>8} nodes, {:>6} borders, region [{:.1}, {:.1}] x [{:.1}, {:.1}]",
            map.owned_nodes(s),
            map.border_nodes(s).len(),
            r[0],
            r[2],
            r[1],
            r[3],
        );
    }
    Ok(())
}

/// Run the shard router: same wire protocol as `serve`, but each query
/// fans out only to the shards the phi*M*mdist bound cannot prune.
fn cmd_route(opts: &HashMap<String, String>) -> Result<(), String> {
    let g = load_graph_or_synth(opts)?;
    let map_path = require(opts, "shard-map")?;
    let map = ShardMap::read_flat(Path::new(&map_path)).map_err(|e| format!("{map_path}: {e}"))?;
    let addrs: Vec<String> = require(opts, "shard-addrs")?
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    let mut config = RouterConfig::new(
        opts.get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7979".to_string()),
        addrs,
        Arc::new(map),
        g,
    );
    config.default_deadline = opts
        .get("deadline-ms")
        .and_then(|v| v.parse().ok())
        .map(std::time::Duration::from_millis);
    if let Some(ms) = opts.get("upstream-timeout-ms").and_then(|v| v.parse().ok()) {
        config.upstream_timeout = std::time::Duration::from_millis(ms);
    }
    let router = Router::bind(config).map_err(|e| e.to_string())?;
    let addr = router.local_addr().map_err(|e| e.to_string())?;
    println!(
        "routing {} shards on {addr} (a wire shutdown drains the whole deployment)",
        router.num_shards(),
    );
    let summary = router.run().map_err(|e| e.to_string())?;
    let m = &summary.metrics;
    println!(
        "drained after {:.1}s: {} conns | {} queries ({} ok, {} empty, {} cancelled, {} errors, {} shed) | {} shards contacted, {} pruned | {} upstream errors",
        summary.uptime.as_secs_f64(),
        summary.connections,
        m.requests,
        m.ok,
        m.empty,
        m.cancelled,
        m.errors,
        m.shed,
        m.shards_contacted,
        m.shards_pruned,
        m.upstream_errors,
    );
    Ok(())
}

/// Push a batch of live weight updates to a running server. The batch is
/// atomic server-side: either every edge is applied (one new epoch) or
/// the whole request is rejected and no epoch is published.
fn cmd_update(opts: &HashMap<String, String>) -> Result<(), String> {
    let addr = opts
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let spec = require(opts, "edges")?;
    let mut updates = Vec::new();
    for part in spec.split(',') {
        let fields: Vec<&str> = part.trim().split(':').collect();
        let [u, v, w] = fields.as_slice() else {
            return Err(format!("bad edge '{part}' (expected u:v:w)"));
        };
        updates.push(WeightUpdate {
            u: u.parse().map_err(|_| format!("bad node id '{u}'"))?,
            v: v.parse().map_err(|_| format!("bad node id '{v}'"))?,
            w: w.parse().map_err(|_| format!("bad weight '{w}'"))?,
        });
    }
    let sent = updates.len();
    let mut client = Client::connect(
        addr.parse::<std::net::SocketAddr>()
            .map_err(|e| format!("{addr}: {e}"))?,
    )
    .map_err(|e| format!("{addr}: {e}"))?;
    // `--stream` sends the batch as the first segment of an update
    // stream (seq 1) instead of a one-shot update: same edges, but the
    // server acks with the stream's cumulative sequence.
    let op = if opts.contains_key("stream") {
        Op::UpdateStream { seq: 1, updates }
    } else {
        Op::Update(updates)
    };
    let resp = client
        .call(&Request {
            id: Some("update".to_string()),
            op,
        })
        .map_err(|e| e.to_string())?;
    match resp.body {
        Body::Updated { epoch, applied } => {
            println!("applied {applied}/{sent} updates; server now at epoch {epoch}");
            Ok(())
        }
        Body::StreamAck {
            seq,
            epoch,
            applied,
        } => {
            println!(
                "stream ack seq {seq}: applied {applied}/{sent} updates; server now at epoch {epoch}"
            );
            Ok(())
        }
        Body::StreamError {
            kind,
            expected,
            got,
        } => Err(format!(
            "stream rejected: {} (expected {expected}, got {got})",
            kind.name()
        )),
        Body::Error { error } => Err(format!("server rejected the batch: {error}")),
        other => Err(format!("unexpected response {other:?}")),
    }
}

fn cmd_bench_batch(opts: &HashMap<String, String>) -> Result<(), String> {
    let defaults = ThroughputOpts::default();
    let nodes: usize = get(opts, "nodes", defaults.nodes);
    let queries: usize = get(opts, "queries", defaults.queries);
    if nodes < 4 {
        return Err(format!("--nodes must be at least 4, got {nodes}"));
    }
    if queries == 0 {
        return Err("--queries must be at least 1".to_string());
    }
    let topts = ThroughputOpts {
        nodes,
        queries,
        p_size: get(opts, "p-size", defaults.p_size),
        q_size: get(opts, "q-size", defaults.q_size),
        phi: get(opts, "phi", defaults.phi),
        workers: get(opts, "workers", defaults.workers),
        seed: get(opts, "seed", defaults.seed),
    };
    run_throughput(&topts);
    Ok(())
}

fn file_kib(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Build the flat v2 index directory: `graph.v2` + `labels.v2` (+
/// `gtree.v2` unless `--skip-gtree`), each written in the zero-copy
/// container so `serve --index` / `Engine::from_index_dir` cold-start
/// without deserialization. `--workers 0` uses every core for the
/// parallel label and G-tree matrix builds.
fn cmd_build_index(opts: &HashMap<String, String>) -> Result<(), String> {
    let g = if opts.contains_key("graph") {
        load_graph(opts)?
    } else {
        let nodes: usize = get(opts, "nodes", 10_000);
        let seed: u64 = get(opts, "seed", 7);
        fannr::workload::synth::road_network(nodes, &mut fannr::workload::rng(seed))
    };
    let out = require(opts, "out")?;
    let workers: usize = get(opts, "workers", 0);
    let dir = Path::new(&out);
    std::fs::create_dir_all(dir).map_err(|e| format!("{out}: {e}"))?;

    let t0 = Instant::now();
    g.write_flat(&dir.join("graph.v2"))
        .map_err(|e| e.to_string())?;
    println!(
        "graph.v2   {:>12} bytes  written in {:.2}s  ({} nodes, {} edges)",
        file_kib(&dir.join("graph.v2")),
        t0.elapsed().as_secs_f64(),
        g.num_nodes(),
        g.num_edges()
    );

    let t0 = Instant::now();
    let labels = HubLabels::build_parallel(&g, workers);
    labels
        .write_flat(&dir.join("labels.v2"))
        .map_err(|e| e.to_string())?;
    println!(
        "labels.v2  {:>12} bytes  built+written in {:.2}s  ({} entries, avg {:.1}/node)",
        file_kib(&dir.join("labels.v2")),
        t0.elapsed().as_secs_f64(),
        labels.total_label_entries(),
        labels.avg_label_size()
    );

    if opts.contains_key("skip-gtree") {
        println!("gtree.v2   skipped (--skip-gtree)");
    } else {
        let params = GTreeParams {
            fanout: get(opts, "fanout", 4usize),
            leaf_cap: get(opts, "leaf-cap", 64usize),
        };
        let t0 = Instant::now();
        let tree = GTree::build_with_params_parallel(&g, params, workers);
        tree.write_flat(&dir.join("gtree.v2"))
            .map_err(|e| e.to_string())?;
        println!(
            "gtree.v2   {:>12} bytes  built+written in {:.2}s  ({} tree nodes, height {})",
            file_kib(&dir.join("gtree.v2")),
            t0.elapsed().as_secs_f64(),
            tree.num_tree_nodes(),
            tree.height()
        );
    }
    println!("index directory ready: {out}");
    Ok(())
}

/// Cold-start benchmark: the same graph + hub labels persisted both ways,
/// then timed from artifact bytes to a first correct query answer.
/// v1 = compact text graph + element-wise label decode (per-node Vec
/// rebuild); v2 = the flat container (one buffer read + typed views).
/// Answers must be bit-identical; results land in `--out` as JSON.
fn cmd_bench_coldstart(opts: &HashMap<String, String>) -> Result<(), String> {
    let nodes: usize = get(opts, "nodes", 30_000);
    let seed: u64 = get(opts, "seed", 7);
    let queries: usize = get(opts, "queries", 8);
    let q_size: usize = get(opts, "q-size", 16);
    let p_density: f64 = get(opts, "p-density", 0.01);
    let phi: f64 = get(opts, "phi", 0.5);
    let workers: usize = get(opts, "workers", 0);
    let out = opts
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/BENCH_8.json".to_string());

    // `--artifacts DIR` persists the serialized indexes and reuses them on
    // later runs, so re-measuring the load paths skips the label build.
    let (dir, keep) = match opts.get("artifacts") {
        Some(d) => (std::path::PathBuf::from(d), true),
        None => (
            std::env::temp_dir().join(format!("fannr-coldstart-{}", std::process::id())),
            false,
        ),
    };
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let graph_v1 = dir.join("graph.txt");
    let labels_v1 = dir.join("labels.v1");
    let graph_v2 = dir.join("graph.v2");
    let labels_v2 = dir.join("labels.v2");
    let have_artifacts = [&graph_v1, &labels_v1, &graph_v2, &labels_v2]
        .iter()
        .all(|p| p.exists());

    let g = if have_artifacts {
        println!("reusing artifacts in {}", dir.display());
        fannr::roadnet::Graph::read_flat(&graph_v2).map_err(|e| e.to_string())?
    } else {
        println!("generating {nodes}-node network (seed {seed})...");
        let g = fannr::workload::synth::road_network(nodes, &mut fannr::workload::rng(seed));
        let t0 = Instant::now();
        let labels = HubLabels::build_parallel(&g, workers);
        println!(
            "built hub labels in {:.1}s ({} entries)",
            t0.elapsed().as_secs_f64(),
            labels.total_label_entries()
        );
        std::fs::write(&graph_v1, write_compact(&g)).map_err(|e| e.to_string())?;
        std::fs::write(&labels_v1, labels.to_bytes()).map_err(|e| e.to_string())?;
        g.write_flat(&graph_v2).map_err(|e| e.to_string())?;
        labels.write_flat(&labels_v2).map_err(|e| e.to_string())?;
        g
    };
    let v1_bytes = file_kib(&graph_v1) + file_kib(&labels_v1);
    let v2_bytes = file_kib(&graph_v2) + file_kib(&labels_v2);

    // Deterministic workload shared by both engines.
    let mut rng = fannr::workload::rng(seed ^ 0xC01D);
    let p = fannr::workload::points::uniform_data_points(&g, p_density, &mut rng);
    let mut qs = Vec::with_capacity(queries);
    for _ in 0..queries {
        qs.push(fannr::workload::points::uniform_query_points(
            &g, q_size, 0.2, &mut rng,
        ));
    }

    let run_queries = |engine: &Engine| -> Result<(f64, Vec<Option<FannAnswer>>), String> {
        let t0 = Instant::now();
        let mut answers = Vec::new();
        let mut first_query_s = 0.0;
        for (i, q) in qs.iter().enumerate() {
            for agg in [Aggregate::Max, Aggregate::Sum] {
                answers.push(engine.query(&p, q, phi, agg).map_err(|e| e.to_string())?);
                if i == 0 && first_query_s == 0.0 {
                    first_query_s = t0.elapsed().as_secs_f64();
                }
            }
        }
        Ok((first_query_s, answers))
    };

    // v1 cold start: parse text graph, decode labels element-wise.
    let t0 = Instant::now();
    let text = std::fs::read_to_string(&graph_v1).map_err(|e| e.to_string())?;
    let g1 = read_compact(&text).map_err(|e| e.to_string())?;
    let l1 = HubLabels::from_bytes(&std::fs::read(&labels_v1).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let v1_load_s = t0.elapsed().as_secs_f64();
    let e1 = Engine::new(&g1).with_prebuilt_labels(l1);
    let (v1_first_q, a1) = run_queries(&e1)?;
    let v1_total_s = t0.elapsed().as_secs_f64();

    // v2 cold start, eager: one buffer read per file, typed views, no
    // per-node deserialization.
    let t0 = Instant::now();
    let g2 = fannr::roadnet::Graph::read_flat_with(&graph_v2, LoadMode::Read)
        .map_err(|e| e.to_string())?;
    let l2 = HubLabels::read_flat_with(&labels_v2, LoadMode::Read).map_err(|e| e.to_string())?;
    let v2_load_s = t0.elapsed().as_secs_f64();
    let label_entries = l2.total_label_entries();
    let e2 = Engine::new(&g2).with_prebuilt_labels(l2);
    let (v2_first_q, a2) = run_queries(&e2)?;
    let v2_total_s = t0.elapsed().as_secs_f64();

    // v2 cold start, mapped: the load is just mmap + a scanning
    // validation pass; bytes page in lazily on first touch, so the first
    // queries carry the faults for the pages they actually read.
    let t0 = Instant::now();
    let g3 = fannr::roadnet::Graph::read_flat_with(&graph_v2, LoadMode::Mmap)
        .map_err(|e| e.to_string())?;
    let l3 = HubLabels::read_flat_with(&labels_v2, LoadMode::Mmap).map_err(|e| e.to_string())?;
    let mmap_load_s = t0.elapsed().as_secs_f64();
    let e3 = Engine::new(&g3).with_prebuilt_labels(l3);
    let (mmap_first_q, a3) = run_queries(&e3)?;
    let mmap_total_s = t0.elapsed().as_secs_f64();

    if a1 != a2 || a1 != a3 {
        return Err("v1, v2, and mmap engines disagree on query answers".to_string());
    }
    if !keep {
        let _ = std::fs::remove_dir_all(&dir);
    }

    let first_correct_v1 = v1_load_s + v1_first_q;
    let first_correct_v2 = v2_load_s + v2_first_q;
    let first_correct_mmap = mmap_load_s + mmap_first_q;
    let json = format!(
        "{{\n  \"bench\": \"coldstart\",\n  \"nodes\": {},\n  \"edges\": {},\n  \"label_entries\": {},\n  \"queries\": {},\n  \"answers_identical\": true,\n  \"v1\": {{ \"bytes\": {}, \"load_s\": {:.6}, \"first_correct_query_s\": {:.6}, \"total_s\": {:.6} }},\n  \"v2_read\": {{ \"bytes\": {}, \"load_s\": {:.6}, \"first_correct_query_s\": {:.6}, \"total_s\": {:.6} }},\n  \"v2_mmap\": {{ \"bytes\": {}, \"load_s\": {:.6}, \"first_correct_query_s\": {:.6}, \"total_s\": {:.6} }},\n  \"load_speedup_v1_over_v2\": {:.2},\n  \"first_correct_query_speedup_v1_over_v2\": {:.2},\n  \"load_speedup_read_over_mmap\": {:.2},\n  \"first_correct_query_speedup_read_over_mmap\": {:.2}\n}}\n",
        g.num_nodes(),
        g.num_edges(),
        label_entries,
        qs.len() * 2,
        v1_bytes,
        v1_load_s,
        first_correct_v1,
        v1_total_s,
        v2_bytes,
        v2_load_s,
        first_correct_v2,
        v2_total_s,
        v2_bytes,
        mmap_load_s,
        first_correct_mmap,
        mmap_total_s,
        v1_load_s / v2_load_s,
        first_correct_v1 / first_correct_v2,
        v2_load_s / mmap_load_s,
        first_correct_v2 / first_correct_mmap,
    );
    if let Some(parent) = Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
    }
    std::fs::write(&out, &json).map_err(|e| format!("{out}: {e}"))?;
    print!("{json}");
    println!(
        "load: v1 {v1_load_s:.3}s vs v2-read {v2_load_s:.3}s vs v2-mmap {mmap_load_s:.3}s; first correct query: {first_correct_v1:.3}s vs {first_correct_v2:.3}s vs {first_correct_mmap:.3}s -> {out}",
    );
    Ok(())
}
