//! End-to-end pipeline tests: dataset registry -> generators -> indexes ->
//! queries, plus IO round-trips — the paths a downstream user exercises.

use fannr::fann::algo::ier::build_p_rtree;
use fannr::fann::algo::{brute_force, exact_max, ier_knn};
use fannr::fann::gphi::ier2::IerPhi;
use fannr::fann::gphi::oracle::LabelOracle;
use fannr::fann::{Aggregate, FannQuery};
use fannr::hublabel::HubLabels;
use fannr::roadnet::io::{read_compact, write_compact};
use fannr::workload::datasets::{by_name, DATASETS};
use fannr::workload::poi::{generate_poi, PoiKind};

#[test]
fn smallest_dataset_full_pipeline() {
    // DE at quarter scale: registry -> graph -> indexes -> query -> answer.
    let spec = by_name("DE").unwrap();
    let graph = spec.synthesize_scaled(0.25);
    let labels = HubLabels::build(&graph);

    let mut rng = fannr::workload::rng(99);
    let p = fannr::workload::points::uniform_data_points(&graph, 0.02, &mut rng);
    let q = fannr::workload::points::uniform_query_points(&graph, 12, 0.2, &mut rng);
    let query = FannQuery::new(&p, &q, 0.5, Aggregate::Max);
    query.validate(&graph).unwrap();

    let rtree = build_p_rtree(&graph, &p);
    let gphi = IerPhi::new(&graph, LabelOracle { labels: &labels }, &q);
    let indexed = ier_knn(&graph, &query, &rtree, &gphi).unwrap();
    let index_free = exact_max(&graph, &query).unwrap();
    let truth = brute_force(&graph, &query).unwrap();
    assert_eq!(indexed.dist, truth.dist);
    assert_eq!(index_free.dist, truth.dist);
}

#[test]
fn poi_workload_pipeline() {
    let graph = fannr::workload::synth::road_network(3000, &mut fannr::workload::rng(3));
    let mut rng = fannr::workload::rng(4);
    let p = generate_poi(&graph, PoiKind::FastFood, &mut rng);
    let q = generate_poi(&graph, PoiKind::Universities, &mut rng);
    assert!(!p.is_empty() && !q.is_empty());
    let query = FannQuery::new(&p, &q, 0.6, Aggregate::Max);
    let got = exact_max(&graph, &query).unwrap();
    let want = brute_force(&graph, &query).unwrap();
    assert_eq!(got.dist, want.dist);
}

#[test]
fn graph_io_roundtrip_preserves_answers() {
    let graph = fannr::workload::synth::road_network(500, &mut fannr::workload::rng(5));
    let text = write_compact(&graph);
    let graph2 = read_compact(&text).unwrap();
    assert_eq!(graph2.num_nodes(), graph.num_nodes());
    assert_eq!(graph2.num_edges(), graph.num_edges());

    let mut rng = fannr::workload::rng(6);
    let p = fannr::workload::points::uniform_data_points(&graph, 0.05, &mut rng);
    let q = fannr::workload::points::uniform_query_points(&graph, 8, 0.5, &mut rng);
    for agg in [Aggregate::Sum, Aggregate::Max] {
        let query = FannQuery::new(&p, &q, 0.5, agg);
        assert_eq!(
            brute_force(&graph, &query).map(|a| a.dist),
            brute_force(&graph2, &query).map(|a| a.dist)
        );
    }
}

#[test]
fn registry_names_resolve_and_scale() {
    for spec in &DATASETS {
        assert!(by_name(spec.name).is_some());
        assert!(spec.gtree_leaf_cap >= 32);
    }
    // Spot-check synthesis of the two smallest.
    for spec in DATASETS.iter().take(2) {
        let g = spec.synthesize_scaled(0.2);
        assert!(g.num_nodes() > 100);
    }
}

#[test]
fn ann_is_fann_with_phi_one() {
    // The paper's framing: ANN is the special case phi = 1.
    let graph = fannr::workload::synth::road_network(800, &mut fannr::workload::rng(8));
    let mut rng = fannr::workload::rng(9);
    let p = fannr::workload::points::uniform_data_points(&graph, 0.05, &mut rng);
    let q = fannr::workload::points::uniform_query_points(&graph, 10, 0.4, &mut rng);
    let query = FannQuery::new(&p, &q, 1.0, Aggregate::Sum);
    let a = brute_force(&graph, &query).unwrap();
    // phi = 1 must aggregate over ALL of Q.
    assert_eq!(a.subset.len(), q.len());
    let mut s = a.subset.clone();
    s.sort_unstable();
    assert_eq!(s, q);
}
