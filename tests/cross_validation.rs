//! Cross-crate integration: every FANN_R algorithm, over every `g_phi`
//! backend of Table I, must return the same `d*` as the brute-force
//! reference on realistic synthetic workloads.

use fannr::fann::algo::ier::build_p_rtree;
use fannr::fann::algo::{apx_sum, brute_force, exact_max, gd, ier_knn, r_list};
use fannr::fann::gphi::gtree_knn::GTreeKnnPhi;
use fannr::fann::gphi::ier2::IerPhi;
use fannr::fann::gphi::ine::InePhi;
use fannr::fann::gphi::oracle::{AStarOracle, GTreeOracle, LabelOracle};
use fannr::fann::gphi::scan::ScanPhi;
use fannr::fann::gphi::GPhi;
use fannr::fann::{Aggregate, FannQuery};
use fannr::gtree::{GTree, GTreeParams};
use fannr::hublabel::HubLabels;
use fannr::roadnet::Graph;

struct Fixture {
    graph: Graph,
    labels: HubLabels,
    gtree: GTree,
    p: Vec<u32>,
    q: Vec<u32>,
}

fn fixture(seed: u64, n: usize, np: f64, nq: usize, clusters: usize) -> Fixture {
    let mut rng = fannr::workload::rng(seed);
    let graph = fannr::workload::synth::road_network(n, &mut rng);
    let labels = HubLabels::build(&graph);
    let gtree = GTree::build_with_params(
        &graph,
        GTreeParams {
            fanout: 4,
            leaf_cap: 16,
        },
    );
    let p = fannr::workload::points::uniform_data_points(&graph, np, &mut rng);
    let q = if clusters <= 1 {
        fannr::workload::points::uniform_query_points(&graph, nq, 0.4, &mut rng)
    } else {
        fannr::workload::points::clustered_query_points(&graph, nq, 0.4, clusters, &mut rng)
    };
    Fixture {
        graph,
        labels,
        gtree,
        p,
        q,
    }
}

fn backends<'a>(f: &'a Fixture) -> Vec<Box<dyn GPhi + 'a>> {
    let g = &f.graph;
    vec![
        Box::new(InePhi::new(g, &f.q)),
        Box::new(ScanPhi::new(AStarOracle::new(g), &f.q)),
        Box::new(ScanPhi::new(LabelOracle { labels: &f.labels }, &f.q)),
        Box::new(GTreeKnnPhi::new(&f.gtree, g, &f.q)),
        Box::new(IerPhi::new(g, AStarOracle::new(g), &f.q)),
        Box::new(IerPhi::new(g, LabelOracle { labels: &f.labels }, &f.q)),
        Box::new(IerPhi::new(
            g,
            GTreeOracle {
                tree: &f.gtree,
                graph: g,
            },
            &f.q,
        )),
    ]
}

fn check_fixture(f: &Fixture, phi: f64, agg: Aggregate) {
    let query = FannQuery::new(&f.p, &f.q, phi, agg);
    let truth = brute_force(&f.graph, &query).expect("connected network");
    let rtree = build_p_rtree(&f.graph, &f.p);
    for b in backends(f) {
        let name = b.name();
        let a = gd(&query, b.as_ref()).unwrap();
        assert_eq!(a.dist, truth.dist, "GD/{name} phi={phi} {agg}");
        let a = r_list(&f.graph, &query, b.as_ref()).unwrap();
        assert_eq!(a.dist, truth.dist, "R-List/{name} phi={phi} {agg}");
        let a = ier_knn(&f.graph, &query, &rtree, b.as_ref()).unwrap();
        assert_eq!(a.dist, truth.dist, "IER-kNN/{name} phi={phi} {agg}");
    }
    match agg {
        Aggregate::Max => {
            let a = exact_max(&f.graph, &query).unwrap();
            assert_eq!(a.dist, truth.dist, "Exact-max phi={phi}");
        }
        Aggregate::Sum => {
            let ine = InePhi::new(&f.graph, &f.q);
            let a = apx_sum(&f.graph, &query, &ine).unwrap();
            assert!(a.dist >= truth.dist);
            assert!(a.dist <= 3 * truth.dist.max(1), "3-approx violated");
        }
    }
}

#[test]
fn uniform_workload_all_algorithms_agree() {
    let f = fixture(1, 600, 0.05, 12, 1);
    for phi in [0.25, 0.5, 1.0] {
        check_fixture(&f, phi, Aggregate::Max);
        check_fixture(&f, phi, Aggregate::Sum);
    }
}

#[test]
fn clustered_workload_all_algorithms_agree() {
    let f = fixture(2, 500, 0.08, 16, 3);
    for phi in [0.3, 0.7] {
        check_fixture(&f, phi, Aggregate::Max);
        check_fixture(&f, phi, Aggregate::Sum);
    }
}

#[test]
fn dense_p_sparse_q() {
    let f = fixture(3, 400, 0.5, 6, 1);
    check_fixture(&f, 0.5, Aggregate::Max);
    check_fixture(&f, 0.5, Aggregate::Sum);
}

#[test]
fn sparse_p_dense_q() {
    let f = fixture(4, 400, 0.01, 40, 1);
    check_fixture(&f, 0.4, Aggregate::Max);
    check_fixture(&f, 0.4, Aggregate::Sum);
}

#[test]
fn q_subset_of_p_two_approx() {
    // Theorem 2: when Q ⊆ P the APX-sum ratio is at most 2.
    let mut rng = fannr::workload::rng(5);
    let graph = fannr::workload::synth::road_network(500, &mut rng);
    let p = fannr::workload::points::uniform_data_points(&graph, 0.3, &mut rng);
    let q: Vec<u32> = p.iter().copied().step_by(7).take(10).collect();
    for phi in [0.3, 0.6, 1.0] {
        let query = FannQuery::new(&p, &q, phi, Aggregate::Sum);
        let truth = brute_force(&graph, &query).unwrap();
        let ine = InePhi::new(&graph, &q);
        let a = apx_sum(&graph, &query, &ine).unwrap();
        assert!(
            a.dist <= 2 * truth.dist.max(1),
            "Theorem 2 violated: {} vs {}",
            a.dist,
            truth.dist
        );
    }
}

#[test]
fn overlapping_p_and_q_nodes() {
    // P and Q may share nodes (e.g. q3 = p4 in the paper's Fig. 1).
    let mut rng = fannr::workload::rng(6);
    let graph = fannr::workload::synth::road_network(300, &mut rng);
    let p = fannr::workload::points::uniform_data_points(&graph, 0.2, &mut rng);
    let mut q = fannr::workload::points::uniform_query_points(&graph, 8, 0.5, &mut rng);
    q.extend(p.iter().take(4)); // force overlap
    q.sort_unstable();
    q.dedup();
    let f = Fixture {
        labels: HubLabels::build(&graph),
        gtree: GTree::build_with_params(
            &graph,
            GTreeParams {
                fanout: 2,
                leaf_cap: 12,
            },
        ),
        graph,
        p,
        q,
    };
    check_fixture(&f, 0.5, Aggregate::Max);
    check_fixture(&f, 0.5, Aggregate::Sum);
}
