//! Snapshot semantics: copy-on-write `apply` vs a from-scratch rebuild.
//!
//! The contract under test, property-sampled across graphs, workloads,
//! strategies, and aggregates:
//!
//! * **equivalence** — an engine that adopted updates via
//!   [`Engine::apply_updates`] answers bit-identically to an engine built
//!   from scratch on the patched graph. This must hold *through* the
//!   staleness window (live hub labels not yet rebuilt, both for
//!   increase-only batches and for batches containing decreases) and
//!   after [`Engine::repair_indexes`] republishes fresh labels.
//! * **atomicity** — a rejected batch publishes nothing: same epoch, same
//!   answers, not stale.
//! * **no torn epochs** — concurrent writers and readers on one shared
//!   engine: every pinned snapshot shows each writer's batch fully
//!   applied or not at all, and epochs never run backwards. The `stress_`
//!   prefix is the CI filter for the multi-threaded step.
//! * **scoped repair ≡ rebuild** — `HubLabels::repair_scoped` and
//!   `GTree::repair_scoped`, driven by a [`RepairScope`], produce indexes
//!   bit-identical to a from-scratch build on the patched graph:
//!   structurally (`PartialEq`), in the serialized artifact bytes, and in
//!   query answers — for chained per-batch repairs and for merged
//!   multi-batch scopes alike.

use fannr::fann::engine::Engine;
use fannr::fann::Aggregate;
use fannr::gtree::{GTree, GTreeParams, RepairCache};
use fannr::hublabel::HubLabels;
use fannr::roadnet::{AppliedUpdate, Graph, GraphBuilder, RepairScope, WeightUpdate};
use proptest::prelude::*;

/// A random connected graph: spanning tree + `extra` random edges
/// (same shape as `tests/properties.rs` / `tests/cancel.rs`).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..28, 0usize..20, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            let x = (next() % 1000) as f64;
            let y = (next() % 1000) as f64;
            b.add_node(x, y);
        }
        let euclid = |b: &GraphBuilder, u: u32, v: u32| {
            let (ux, uy) = b.coord_of(u);
            let (vx, vy) = b.coord_of(v);
            ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt()
        };
        for v in 1..n as u32 {
            let u = (next() % v as u64) as u32;
            let w = euclid(&b, u, v).ceil() as u32 + (next() % 50) as u32;
            b.add_edge(u, v, w.max(1));
        }
        for _ in 0..extra {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u != v {
                let w = euclid(&b, u, v).ceil() as u32 + (next() % 50) as u32;
                b.add_edge(u, v, w.max(1));
            }
        }
        b.build()
    })
}

/// Graph plus non-empty P, Q, a phi, and an update seed.
fn arb_instance() -> impl Strategy<Value = (Graph, Vec<u32>, Vec<u32>, f64, u64)> {
    (arb_graph(), any::<u64>(), 1usize..100, any::<u64>()).prop_map(
        |(g, seed, phi_pct, upd_seed)| {
            let n = g.num_nodes();
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            fn pick(next: &mut dyn FnMut() -> u64, n: usize, count: usize) -> Vec<u32> {
                let mut v: Vec<u32> = (0..count).map(|_| (next() % n as u64) as u32).collect();
                v.sort_unstable();
                v.dedup();
                v
            }
            let pc = 1 + (next() % 8) as usize;
            let p = pick(&mut next, n, pc);
            let qc = 1 + (next() % 8) as usize;
            let q = pick(&mut next, n, qc);
            (g, p, q, (phi_pct as f64) / 100.0, upd_seed)
        },
    )
}

/// Undirected edge list `(u, v, w)` with `u < v`.
fn edge_list(g: &Graph) -> Vec<(u32, u32, u32)> {
    let mut es = Vec::new();
    for u in 0..g.num_nodes() as u32 {
        for (v, w) in g.neighbors(u) {
            if u < v {
                es.push((u, v, w));
            }
        }
    }
    es
}

/// Two update batches over a seed-chosen edge subset. Batch one inflates
/// each chosen edge to `4w` (increase-only: stale labels may reuse
/// certificates); batch two drops the same edges to `2w` (a genuine
/// decrease from the live weights: stale labels must fall back wholesale).
/// Both stay at or above the seed weight `w`, so admissibility — proved
/// for the seed graph at snapshot construction — is never in question.
fn update_batches(g: &Graph, seed: u64) -> (Vec<WeightUpdate>, Vec<WeightUpdate>) {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut inflate = Vec::new();
    let mut deflate = Vec::new();
    for (u, v, w) in edge_list(g) {
        if next() % 3 == 0 {
            inflate.push(WeightUpdate {
                u,
                v,
                w: w.saturating_mul(4),
            });
            deflate.push(WeightUpdate {
                u,
                v,
                w: w.saturating_mul(2),
            });
        }
    }
    (inflate, deflate)
}

/// The three engine configurations covering all four strategies.
fn engines(g: &Graph) -> [Engine; 3] {
    [
        Engine::new(g),                        // Exact-max / R-List
        Engine::new(g).allow_approx_sum(true), // Exact-max / APX-sum
        Engine::new(g).with_labels(),          // IER-kNN/PHL
    ]
}

fn assert_same_answers(
    live: &Engine,
    rebuilt: &Engine,
    p: &[u32],
    q: &[u32],
    phi: f64,
    stage: &str,
) {
    for agg in [Aggregate::Max, Aggregate::Sum] {
        let got = live.query(p, q, phi, agg);
        let want = rebuilt.query(p, q, phi, agg);
        assert_eq!(
            got,
            want,
            "{} diverged from a from-scratch rebuild at stage '{stage}' ({agg:?})",
            live.strategy_for(agg).name(),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `apply` is indistinguishable from rebuilding on the patched graph,
    /// at every point of the staleness lifecycle, for every strategy.
    #[test]
    fn applied_updates_match_a_from_scratch_rebuild(
        (g, p, q, phi, upd_seed) in arb_instance()
    ) {
        let (inflate, deflate) = update_batches(&g, upd_seed);
        prop_assume!(!inflate.is_empty());
        let patch = |ups: &[WeightUpdate]| -> Graph {
            let patches: Vec<_> = ups.iter().map(|u| (u.u, u.v, u.w)).collect();
            g.with_patched_weights(&patches).expect("edges exist")
        };
        let g1 = patch(&inflate);
        let g2 = patch(&deflate);
        let rebuilt_on_g1 = engines(&g1);
        let rebuilt_on_g2 = engines(&g2);

        for (i, live) in engines(&g).into_iter().enumerate() {
            let rebuilt1 = &rebuilt_on_g1[i];
            let rebuilt2 = &rebuilt_on_g2[i];

            // Increase-only window: labels (if any) are stale but may
            // keep serving unaffected pairs via the tight-edge check.
            let epoch = live.apply_updates(&inflate).expect("admissible");
            prop_assert_eq!(epoch, 1);
            prop_assert_eq!(live.is_stale(), live.has_labels());
            assert_same_answers(&live, rebuilt1, &p, &q, phi, "stale, increase-only");

            // Decrease window: every label answer must fall back to
            // exact search — and still match the rebuild bit-for-bit.
            let epoch = live.apply_updates(&deflate).expect("admissible");
            prop_assert_eq!(epoch, 2);
            assert_same_answers(&live, rebuilt2, &p, &q, phi, "stale, with decreases");

            // After repair the labels are fresh again at the same epoch.
            let repaired_epoch = live.repair_indexes();
            prop_assert_eq!(repaired_epoch, 2);
            prop_assert!(!live.is_stale());
            assert_same_answers(&live, rebuilt2, &p, &q, phi, "repaired");
        }
    }

    /// A batch with one bad update publishes nothing, even if the rest of
    /// the batch was applicable: same epoch, same answers, not stale.
    #[test]
    fn rejected_batches_publish_nothing(
        (g, p, q, phi, upd_seed) in arb_instance()
    ) {
        let (mut inflate, _) = update_batches(&g, upd_seed);
        prop_assume!(!inflate.is_empty());
        // A self-loop is invalid on any graph this generator produces.
        inflate.push(WeightUpdate { u: 0, v: 0, w: 1 });
        let live = Engine::new(&g).with_labels();
        let baseline: Vec<_> = [Aggregate::Max, Aggregate::Sum]
            .map(|agg| live.query(&p, &q, phi, agg))
            .into_iter()
            .collect();
        prop_assert!(live.apply_updates(&inflate).is_err());
        prop_assert_eq!(live.epoch(), 0);
        prop_assert!(!live.is_stale());
        for (i, agg) in [Aggregate::Max, Aggregate::Sum].into_iter().enumerate() {
            prop_assert_eq!(&live.query(&p, &q, phi, agg), &baseline[i]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scoped index repair is indistinguishable from rebuilding on the
    /// patched graph — structurally, byte-for-byte in the serialized
    /// artifact, and in query answers. A `fanout 2 / leaf_cap 4` G-tree
    /// over 4–28 node graphs is several levels deep, so the seed-chosen
    /// batches routinely span multiple leaves and include cut (border)
    /// edges whose repair anchor is an internal LCA node. Covers chained
    /// repairs (one per batch), a merged two-batch scope repaired in one
    /// pass from the original index, and the disk-load path where the
    /// repair cache is reconstructed with [`RepairCache::for_tree`].
    #[test]
    fn scoped_repairs_match_rebuilds_bit_for_bit(
        (g, p, q, phi, upd_seed) in arb_instance()
    ) {
        let (inflate, deflate) = update_batches(&g, upd_seed);
        prop_assume!(!inflate.is_empty());
        let patch = |ups: &[WeightUpdate]| -> Graph {
            let patches: Vec<_> = ups.iter().map(|u| (u.u, u.v, u.w)).collect();
            g.with_patched_weights(&patches).expect("edges exist")
        };
        let g1 = patch(&inflate);
        let g2 = patch(&deflate);

        let applied = |from: &Graph, ups: &[WeightUpdate]| -> Vec<AppliedUpdate> {
            ups.iter()
                .map(|u| AppliedUpdate {
                    u: u.u,
                    v: u.v,
                    w_old: from.edge_weight(u.u, u.v).expect("edge exists"),
                    w_new: u.w,
                })
                .collect()
        };
        let batch1 = applied(&g, &inflate);
        let batch2 = applied(&g1, &deflate);

        let scope1 = RepairScope::from_applied(&batch1);
        let scope2 = RepairScope::from_applied(&batch2);
        let mut merged = scope1.clone();
        merged.absorb(&batch2);
        // Merge semantics: same edge set as either batch, first `w_old`
        // wins — so w -> 4w -> 2w merges to the increase w -> 2w even
        // though batch two alone is a decrease.
        prop_assert!(scope1.increase_only());
        prop_assert!(!scope2.increase_only());
        prop_assert!(merged.increase_only());
        prop_assert_eq!(merged.len(), scope1.len());

        let touched1: Vec<_> = scope1.touched_pairs().collect();
        let touched2: Vec<_> = scope2.touched_pairs().collect();
        let merged_pairs: Vec<_> = merged.touched_pairs().collect();

        // Hub labels: chained repairs, each vs a from-scratch build.
        let l0 = HubLabels::build(&g);
        let (l1, s1) = l0.repair_scoped(&g1, &touched1);
        let want1 = HubLabels::build(&g1);
        prop_assert!(l1 == want1, "label repair diverged (increase batch)");
        prop_assert!(l1.to_bytes() == want1.to_bytes(), "label artifact bytes differ");
        prop_assert_eq!(s1.roots_total, g.num_nodes());
        prop_assert!(s1.roots_searched <= s1.roots_total);

        let (l2, _) = l1.repair_scoped(&g2, &touched2);
        let want2 = HubLabels::build(&g2);
        prop_assert!(l2 == want2, "label repair diverged (decrease batch)");
        prop_assert!(l2.to_bytes() == want2.to_bytes(), "label artifact bytes differ");

        // Merged scope: one repair straight from the original labels.
        let (lm, _) = l0.repair_scoped(&g2, &merged_pairs);
        prop_assert!(lm == want2, "merged-scope label repair diverged");
        prop_assert!(lm.to_bytes() == want2.to_bytes(), "label artifact bytes differ");

        // G-tree: same three shapes against a parallel from-scratch build.
        let params = GTreeParams { fanout: 2, leaf_cap: 4 };
        let (t0, mut cache) = GTree::build_with_cache(&g, params, 1);
        let (t1, gs1) = t0.repair_scoped(&g1, &mut cache, &touched1, 1);
        let want_t1 = GTree::build_with_params_parallel(&g1, params, 1);
        prop_assert!(t1 == want_t1, "g-tree repair diverged (increase batch)");
        prop_assert!(t1.to_bytes() == want_t1.to_bytes(), "g-tree artifact bytes differ");
        // A cut-edge-only batch anchors at internal LCA nodes and may
        // recompute zero leaves — but never zero nodes.
        prop_assert!(gs1.nodes_recomputed >= 1);
        prop_assert!(gs1.entries_repaired <= gs1.entries_total);

        let (t2, _) = t1.repair_scoped(&g2, &mut cache, &touched2, 1);
        let want_t2 = GTree::build_with_params_parallel(&g2, params, 1);
        prop_assert!(t2 == want_t2, "g-tree repair diverged (decrease batch)");
        prop_assert!(t2.to_bytes() == want_t2.to_bytes(), "g-tree artifact bytes differ");

        // Merged scope through a cache rebuilt off the original tree —
        // the path a server takes after loading a flat index from disk.
        let mut cache_m = RepairCache::for_tree(&t0, &g, 1);
        let (tm, _) = t0.repair_scoped(&g2, &mut cache_m, &merged_pairs, 1);
        prop_assert!(tm == want_t2, "merged-scope g-tree repair diverged");
        prop_assert!(tm.to_bytes() == want_t2.to_bytes(), "g-tree artifact bytes differ");

        // Answers: engines over the scoped-repaired labels agree with
        // freshly built engines for every strategy and aggregate.
        let scoped = [
            Engine::new(&g2),
            Engine::new(&g2).allow_approx_sum(true),
            Engine::new(&g2).with_prebuilt_labels(lm),
        ];
        let fresh = engines(&g2);
        for (live, rebuilt) in scoped.iter().zip(&fresh) {
            assert_same_answers(live, rebuilt, &p, &q, phi, "scoped-repaired artifacts");
        }
    }
}

/// Multi-threaded hot-swap stress (the CI `stress_` step): N writers each
/// toggling their own disjoint edge batch, M readers pinning snapshots.
/// Every pinned snapshot must show each writer's batch fully applied or
/// fully absent, and the epoch sequence seen by any single reader must be
/// non-decreasing. Bounded well under the 60s CI budget.
#[test]
fn stress_swaps_are_atomic_under_concurrent_readers() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    const WRITERS: usize = 3;
    const READERS: usize = 5;
    const EDGES_PER_WRITER: usize = 4;
    const RUN_FOR: Duration = Duration::from_millis(1500);

    let mut rng = fannr::workload::rng(41);
    let base = fannr::workload::synth::road_network(200, &mut rng);
    let edges = edge_list(&base);
    assert!(edges.len() >= WRITERS * EDGES_PER_WRITER);
    let groups: Vec<Vec<(u32, u32, u32)>> = (0..WRITERS)
        .map(|i| edges[i * EDGES_PER_WRITER..(i + 1) * EDGES_PER_WRITER].to_vec())
        .collect();

    // No labels: repair noise is covered elsewhere; this test isolates
    // the swap/pin protocol under write contention.
    let engine = Engine::new(&base);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for group in &groups {
            let engine = engine.clone();
            let stop = &stop;
            scope.spawn(move || {
                let mut doubled = false;
                while !stop.load(Ordering::Relaxed) {
                    doubled = !doubled;
                    let batch: Vec<WeightUpdate> = group
                        .iter()
                        .map(|&(u, v, w)| WeightUpdate {
                            u,
                            v,
                            w: if doubled { w.saturating_mul(2) } else { w },
                        })
                        .collect();
                    engine.apply_updates(&batch).expect("admissible");
                }
            });
        }

        for _ in 0..READERS {
            let engine = engine.clone();
            let stop = &stop;
            let groups = &groups;
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut pins = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = engine.snapshot();
                    let epoch = snap.epoch();
                    assert!(
                        epoch >= last_epoch,
                        "epoch ran backwards: {last_epoch} -> {epoch}"
                    );
                    last_epoch = epoch;
                    let g = snap.graph();
                    for group in groups {
                        let states: Vec<bool> = group
                            .iter()
                            .map(|&(u, v, w)| {
                                let now = g.edge_weight(u, v).expect("edge exists");
                                assert!(
                                    now == w || now == w.saturating_mul(2),
                                    "edge ({u},{v}) has weight {now}, expected {w} or 2x"
                                );
                                now != w
                            })
                            .collect();
                        assert!(
                            states.iter().all(|&s| s == states[0]),
                            "torn batch: edges of one writer disagree: {states:?}"
                        );
                    }
                    pins += 1;
                }
                assert!(pins > 0, "reader never pinned a snapshot");
            });
        }

        let started = Instant::now();
        while started.elapsed() < RUN_FOR {
            std::thread::sleep(Duration::from_millis(25));
        }
        stop.store(true, Ordering::Relaxed);
    });

    // The cell is quiescent again; one last pinned read sees a coherent
    // final epoch.
    let snap = engine.snapshot();
    assert!(snap.epoch() > 0, "writers never published an epoch");
}
