//! The flat v2 index contract, end to end: round-trips are bit-identical
//! (v2 bytes == in-memory build == v1 decode for graph, hub labels, and
//! G-tree), an engine cold-started from an index directory answers every
//! strategy bit-identically to an engine built in memory, and malformed
//! containers are rejected with typed errors rather than panics.

use fannr::fann::engine::{Engine, IndexDirOptions};
use fannr::fann::{Aggregate, FannAnswer};
use fannr::gtree::{GTree, GTreeParams};
use fannr::hublabel::HubLabels;
use fannr::roadnet::{Graph, GraphBuilder, LoadMode, NodeId};
use proptest::prelude::*;

/// A random connected graph: spanning tree + extra random edges.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..40, 0usize..24, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node((next() % 1000) as f64, (next() % 1000) as f64);
        }
        for v in 1..n as u32 {
            let u = (next() % v as u64) as u32;
            b.add_edge(u, v, (next() % 40 + 1) as u32);
        }
        for _ in 0..extra {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u != v {
                b.add_edge(u, v, (next() % 40 + 1) as u32);
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Graph: flat v2 bytes decode to the exact same CSR arrays.
    #[test]
    fn graph_v2_round_trip_is_bit_identical(g in arb_graph()) {
        let back = Graph::from_flat_bytes(&g.to_flat_bytes()).unwrap();
        prop_assert!(back == g);
    }

    /// Hub labels: v2 round trip == in-memory build == v1 decode.
    #[test]
    fn labels_v2_matches_build_and_v1(g in arb_graph()) {
        let built = HubLabels::build(&g);
        let via_v1 = HubLabels::from_bytes(&built.to_bytes()).unwrap();
        let via_v2 = HubLabels::from_flat_bytes(&built.to_flat_bytes()).unwrap();
        prop_assert!(via_v2 == built);
        prop_assert!(via_v2 == via_v1);
    }

    /// G-tree: v2 round trip == in-memory build == v1 decode.
    #[test]
    fn gtree_v2_matches_build_and_v1(g in arb_graph()) {
        let built = GTree::build_with_params(
            &g,
            GTreeParams { fanout: 2, leaf_cap: 5 },
        );
        let via_v1 = GTree::from_bytes(&built.to_bytes()).unwrap();
        let via_v2 = GTree::from_flat_bytes(&built.to_flat_bytes()).unwrap();
        prop_assert!(via_v2 == built);
        prop_assert!(via_v2 == via_v1);
    }

    /// Truncating a v2 container anywhere must produce an error, not a
    /// panic or a silently wrong structure.
    #[test]
    fn truncated_v2_containers_are_rejected(g in arb_graph(), frac in 0.0f64..1.0) {
        let bytes = HubLabels::build(&g).to_flat_bytes();
        let cut = ((bytes.len() as f64 * frac) as usize / 8) * 8;
        if cut < bytes.len() {
            prop_assert!(HubLabels::from_flat_bytes(&bytes[..cut]).is_err());
        }
    }
}

fn workload(g: &Graph, seed: u64) -> (Vec<NodeId>, Vec<Vec<NodeId>>) {
    let mut rng = fannr::workload::rng(seed);
    let p = fannr::workload::points::uniform_data_points(g, 0.05, &mut rng);
    let qs = (0..4)
        .map(|_| fannr::workload::points::uniform_query_points(g, 8, 0.4, &mut rng))
        .collect();
    (p, qs)
}

/// Cold start from `fannr build-index` artifacts: every strategy the
/// engine can dispatch (IER-kNN over labels, Exact-max, R-List, APX-sum)
/// answers bit-identically to an engine built in memory.
#[test]
fn engine_from_index_dir_matches_in_memory_for_all_strategies() {
    let graph = fannr::workload::synth::road_network(800, &mut fannr::workload::rng(41));
    let labels = HubLabels::build_parallel(&graph, 2);

    let dir = std::env::temp_dir().join(format!("fannr-flatidx-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    graph.write_flat(&dir.join("graph.v2")).unwrap();
    labels.write_flat(&dir.join("labels.v2")).unwrap();

    let (p, qs) = workload(&graph, 42);

    // Labeled engines: strategy IerKnnLabels for both aggregates.
    let mem_labeled = Engine::new(&graph).with_prebuilt_labels(labels);
    let disk_labeled = Engine::from_index_dir(&dir).unwrap();
    assert!(disk_labeled.has_labels(), "labels.v2 must attach");
    // Index-free engines: ExactMax (max), RListIne (sum), ApxSumIne (sum).
    let disk_graph = Graph::read_flat(&dir.join("graph.v2")).unwrap();
    assert!(disk_graph == graph);
    let mem_plain = Engine::new(&graph);
    let disk_plain = Engine::new(&disk_graph);
    let mem_apx = Engine::new(&graph).allow_approx_sum(true);
    let disk_apx = Engine::new(&disk_graph).allow_approx_sum(true);

    let run = |e: &Engine, q: &[NodeId], agg: Aggregate| -> Option<FannAnswer> {
        e.query(&p, q, 0.5, agg).unwrap()
    };
    for q in &qs {
        for agg in [Aggregate::Max, Aggregate::Sum] {
            assert_eq!(
                run(&mem_labeled, q, agg),
                run(&disk_labeled, q, agg),
                "labeled engine diverged ({agg})"
            );
            assert_eq!(
                run(&mem_plain, q, agg),
                run(&disk_plain, q, agg),
                "index-free engine diverged ({agg})"
            );
        }
        assert_eq!(
            run(&mem_apx, q, Aggregate::Sum),
            run(&disk_apx, q, Aggregate::Sum),
            "apx-sum engine diverged"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// The mmap loading mode decodes every container to the exact same
/// structure as the one-`read` path: the flat format's alignment
/// guarantees hold against page-aligned mapped bytes just as they do
/// against a heap buffer.
#[cfg(unix)]
#[test]
fn mmap_load_matches_read_load_for_all_containers() {
    let graph = fannr::workload::synth::road_network(500, &mut fannr::workload::rng(13));
    let labels = HubLabels::build(&graph);
    let gtree = GTree::build_with_params(
        &graph,
        GTreeParams {
            fanout: 2,
            leaf_cap: 16,
        },
    );

    let dir = std::env::temp_dir().join(format!("fannr-flatmm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    graph.write_flat(&dir.join("graph.v2")).unwrap();
    labels.write_flat(&dir.join("labels.v2")).unwrap();
    gtree.write_flat(&dir.join("gtree.v2")).unwrap();

    let g_read = Graph::read_flat_with(&dir.join("graph.v2"), LoadMode::Read).unwrap();
    let g_mmap = Graph::read_flat_with(&dir.join("graph.v2"), LoadMode::Mmap).unwrap();
    assert!(g_mmap == g_read && g_mmap == graph, "graph: mmap != read");

    let l_read = HubLabels::read_flat_with(&dir.join("labels.v2"), LoadMode::Read).unwrap();
    let l_mmap = HubLabels::read_flat_with(&dir.join("labels.v2"), LoadMode::Mmap).unwrap();
    assert!(l_mmap == l_read && l_mmap == labels, "labels: mmap != read");

    let t_read = GTree::read_flat_with(&dir.join("gtree.v2"), LoadMode::Read).unwrap();
    let t_mmap = GTree::read_flat_with(&dir.join("gtree.v2"), LoadMode::Mmap).unwrap();
    assert!(t_mmap == t_read && t_mmap == gtree, "gtree: mmap != read");

    // And the mapped engine answers bit-identically to the in-memory one.
    let (p, qs) = workload(&graph, 7);
    let mem = Engine::new(&graph).with_prebuilt_labels(labels);
    let mapped = Engine::new(&g_mmap).with_prebuilt_labels(l_mmap);
    for q in &qs {
        for agg in [Aggregate::Max, Aggregate::Sum] {
            assert_eq!(
                mem.query(&p, q, 0.5, agg).unwrap(),
                mapped.query(&p, q, 0.5, agg).unwrap(),
                "mmap-backed engine diverged ({agg})"
            );
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Cold start from `graph.v2` alone with `background_build`: the engine
/// answers the first query correctly (index-free, exactly) before the
/// labels publish, the background thread eventually swaps hub labels in
/// through the snapshot cell, answers stay bit-identical across the
/// swap, and `labels.v2` + `gtree.v2` land on disk for the next start.
#[test]
fn background_build_serves_exactly_then_publishes_and_persists() {
    let graph = fannr::workload::synth::road_network(400, &mut fannr::workload::rng(23));
    let dir = std::env::temp_dir().join(format!("fannr-flatbg-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    graph.write_flat(&dir.join("graph.v2")).unwrap();

    let opts = IndexDirOptions {
        background_build: true,
        workers: 2,
        gtree_params: GTreeParams {
            fanout: 2,
            leaf_cap: 16,
        },
        ..IndexDirOptions::default()
    };
    let engine = Engine::from_index_dir_with(&dir, &opts).unwrap();

    // First queries run while (in all likelihood) the labels are still
    // building; whether or not the swap has landed they must match a
    // plain in-memory engine — both sides are exact.
    let (p, qs) = workload(&graph, 9);
    let mem = Engine::new(&graph);
    let first: Vec<Option<FannAnswer>> = qs
        .iter()
        .map(|q| engine.query(&p, q, 0.5, Aggregate::Max).unwrap())
        .collect();
    for (q, want) in qs.iter().zip(&first) {
        assert_eq!(
            &mem.query(&p, q, 0.5, Aggregate::Max).unwrap(),
            want,
            "pre-publication answer diverged from the in-memory engine"
        );
    }

    // The background thread must publish labels through the snapshot
    // swap within the deadline (tiny graph; seconds at most).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while !engine.has_labels() {
        assert!(
            std::time::Instant::now() < deadline,
            "background label build never published"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // Same queries after the swap: bit-identical answers.
    for (q, want) in qs.iter().zip(&first) {
        assert_eq!(
            &engine.query(&p, q, 0.5, Aggregate::Max).unwrap(),
            want,
            "answers changed across the label publication swap"
        );
    }

    // Both artifacts persist (atomically) for the next cold start; the
    // G-tree may land shortly after the label swap, so poll for it too.
    while !dir.join("labels.v2").exists() || !dir.join("gtree.v2").exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "background build never persisted labels.v2 + gtree.v2"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let persisted = HubLabels::read_flat(&dir.join("labels.v2")).unwrap();
    assert_eq!(persisted.num_nodes(), graph.num_nodes());
    let persisted_tree = GTree::read_flat(&dir.join("gtree.v2")).unwrap();
    assert!(
        persisted_tree == GTree::build_with_params(&graph, opts.gtree_params),
        "persisted gtree.v2 must match a from-scratch build on graph.v2"
    );

    // A second cold start now attaches the persisted labels eagerly.
    let warm = Engine::from_index_dir(&dir).unwrap();
    assert!(warm.has_labels(), "persisted index must attach on restart");
    for (q, want) in qs.iter().zip(&first) {
        assert_eq!(
            &warm.query(&p, q, 0.5, Aggregate::Max).unwrap(),
            want,
            "restarted engine diverged"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// A missing or mangled index directory yields typed errors, and a label
/// file for a different graph is refused by the node-count check.
#[test]
fn from_index_dir_rejects_bad_directories() {
    let dir = std::env::temp_dir().join(format!("fannr-flatbad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Empty dir: no graph.v2.
    assert!(Engine::from_index_dir(&dir).is_err());

    // Corrupt graph.v2.
    std::fs::write(dir.join("graph.v2"), vec![0u8; 64]).unwrap();
    assert!(Engine::from_index_dir(&dir).is_err());

    // Valid graph, labels built for a different graph.
    let g1 = fannr::workload::synth::road_network(300, &mut fannr::workload::rng(1));
    let g2 = fannr::workload::synth::road_network(600, &mut fannr::workload::rng(2));
    g1.write_flat(&dir.join("graph.v2")).unwrap();
    HubLabels::build(&g2)
        .write_flat(&dir.join("labels.v2"))
        .unwrap();
    assert!(
        Engine::from_index_dir(&dir).is_err(),
        "mismatched labels must be refused"
    );

    // Matching labels: loads.
    HubLabels::build(&g1)
        .write_flat(&dir.join("labels.v2"))
        .unwrap();
    assert!(Engine::from_index_dir(&dir).unwrap().has_labels());

    std::fs::remove_dir_all(&dir).ok();
}
