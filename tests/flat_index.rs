//! The flat v2 index contract, end to end: round-trips are bit-identical
//! (v2 bytes == in-memory build == v1 decode for graph, hub labels, and
//! G-tree), an engine cold-started from an index directory answers every
//! strategy bit-identically to an engine built in memory, and malformed
//! containers are rejected with typed errors rather than panics.

use fannr::fann::engine::Engine;
use fannr::fann::{Aggregate, FannAnswer};
use fannr::gtree::{GTree, GTreeParams};
use fannr::hublabel::HubLabels;
use fannr::roadnet::{Graph, GraphBuilder, NodeId};
use proptest::prelude::*;

/// A random connected graph: spanning tree + extra random edges.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..40, 0usize..24, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node((next() % 1000) as f64, (next() % 1000) as f64);
        }
        for v in 1..n as u32 {
            let u = (next() % v as u64) as u32;
            b.add_edge(u, v, (next() % 40 + 1) as u32);
        }
        for _ in 0..extra {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u != v {
                b.add_edge(u, v, (next() % 40 + 1) as u32);
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Graph: flat v2 bytes decode to the exact same CSR arrays.
    #[test]
    fn graph_v2_round_trip_is_bit_identical(g in arb_graph()) {
        let back = Graph::from_flat_bytes(&g.to_flat_bytes()).unwrap();
        prop_assert!(back == g);
    }

    /// Hub labels: v2 round trip == in-memory build == v1 decode.
    #[test]
    fn labels_v2_matches_build_and_v1(g in arb_graph()) {
        let built = HubLabels::build(&g);
        let via_v1 = HubLabels::from_bytes(&built.to_bytes()).unwrap();
        let via_v2 = HubLabels::from_flat_bytes(&built.to_flat_bytes()).unwrap();
        prop_assert!(via_v2 == built);
        prop_assert!(via_v2 == via_v1);
    }

    /// G-tree: v2 round trip == in-memory build == v1 decode.
    #[test]
    fn gtree_v2_matches_build_and_v1(g in arb_graph()) {
        let built = GTree::build_with_params(
            &g,
            GTreeParams { fanout: 2, leaf_cap: 5 },
        );
        let via_v1 = GTree::from_bytes(&built.to_bytes()).unwrap();
        let via_v2 = GTree::from_flat_bytes(&built.to_flat_bytes()).unwrap();
        prop_assert!(via_v2 == built);
        prop_assert!(via_v2 == via_v1);
    }

    /// Truncating a v2 container anywhere must produce an error, not a
    /// panic or a silently wrong structure.
    #[test]
    fn truncated_v2_containers_are_rejected(g in arb_graph(), frac in 0.0f64..1.0) {
        let bytes = HubLabels::build(&g).to_flat_bytes();
        let cut = ((bytes.len() as f64 * frac) as usize / 8) * 8;
        if cut < bytes.len() {
            prop_assert!(HubLabels::from_flat_bytes(&bytes[..cut]).is_err());
        }
    }
}

fn workload(g: &Graph, seed: u64) -> (Vec<NodeId>, Vec<Vec<NodeId>>) {
    let mut rng = fannr::workload::rng(seed);
    let p = fannr::workload::points::uniform_data_points(g, 0.05, &mut rng);
    let qs = (0..4)
        .map(|_| fannr::workload::points::uniform_query_points(g, 8, 0.4, &mut rng))
        .collect();
    (p, qs)
}

/// Cold start from `fannr build-index` artifacts: every strategy the
/// engine can dispatch (IER-kNN over labels, Exact-max, R-List, APX-sum)
/// answers bit-identically to an engine built in memory.
#[test]
fn engine_from_index_dir_matches_in_memory_for_all_strategies() {
    let graph = fannr::workload::synth::road_network(800, &mut fannr::workload::rng(41));
    let labels = HubLabels::build_parallel(&graph, 2);

    let dir = std::env::temp_dir().join(format!("fannr-flatidx-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    graph.write_flat(&dir.join("graph.v2")).unwrap();
    labels.write_flat(&dir.join("labels.v2")).unwrap();

    let (p, qs) = workload(&graph, 42);

    // Labeled engines: strategy IerKnnLabels for both aggregates.
    let mem_labeled = Engine::new(&graph).with_prebuilt_labels(labels);
    let disk_labeled = Engine::from_index_dir(&dir).unwrap();
    assert!(disk_labeled.has_labels(), "labels.v2 must attach");
    // Index-free engines: ExactMax (max), RListIne (sum), ApxSumIne (sum).
    let disk_graph = Graph::read_flat(&dir.join("graph.v2")).unwrap();
    assert!(disk_graph == graph);
    let mem_plain = Engine::new(&graph);
    let disk_plain = Engine::new(&disk_graph);
    let mem_apx = Engine::new(&graph).allow_approx_sum(true);
    let disk_apx = Engine::new(&disk_graph).allow_approx_sum(true);

    let run = |e: &Engine, q: &[NodeId], agg: Aggregate| -> Option<FannAnswer> {
        e.query(&p, q, 0.5, agg).unwrap()
    };
    for q in &qs {
        for agg in [Aggregate::Max, Aggregate::Sum] {
            assert_eq!(
                run(&mem_labeled, q, agg),
                run(&disk_labeled, q, agg),
                "labeled engine diverged ({agg})"
            );
            assert_eq!(
                run(&mem_plain, q, agg),
                run(&disk_plain, q, agg),
                "index-free engine diverged ({agg})"
            );
        }
        assert_eq!(
            run(&mem_apx, q, Aggregate::Sum),
            run(&disk_apx, q, Aggregate::Sum),
            "apx-sum engine diverged"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// A missing or mangled index directory yields typed errors, and a label
/// file for a different graph is refused by the node-count check.
#[test]
fn from_index_dir_rejects_bad_directories() {
    let dir = std::env::temp_dir().join(format!("fannr-flatbad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Empty dir: no graph.v2.
    assert!(Engine::from_index_dir(&dir).is_err());

    // Corrupt graph.v2.
    std::fs::write(dir.join("graph.v2"), vec![0u8; 64]).unwrap();
    assert!(Engine::from_index_dir(&dir).is_err());

    // Valid graph, labels built for a different graph.
    let g1 = fannr::workload::synth::road_network(300, &mut fannr::workload::rng(1));
    let g2 = fannr::workload::synth::road_network(600, &mut fannr::workload::rng(2));
    g1.write_flat(&dir.join("graph.v2")).unwrap();
    HubLabels::build(&g2)
        .write_flat(&dir.join("labels.v2"))
        .unwrap();
    assert!(
        Engine::from_index_dir(&dir).is_err(),
        "mismatched labels must be refused"
    );

    // Matching labels: loads.
    HubLabels::build(&g1)
        .write_flat(&dir.join("labels.v2"))
        .unwrap();
    assert!(Engine::from_index_dir(&dir).unwrap().has_labels());

    std::fs::remove_dir_all(&dir).ok();
}
