//! The paper's worked example (Fig. 1) against EVERY algorithm: the
//! max-ANN answer is p2 (d = 16), sum-ANN is p2 (d = 52); with phi = 50%
//! the max-FANN answer is p3 (d = 2) and sum-FANN is p3 (d = 4) with
//! Q*_phi = {q1, q2}.

use fannr::fann::algo::ier::build_p_rtree;
use fannr::fann::algo::topk::{exact_max_topk, gd_topk, ier_topk, rlist_topk};
use fannr::fann::algo::{apx_sum, exact_max, gd, ier_knn, r_list};
use fannr::fann::gphi::ine::InePhi;
use fannr::fann::{Aggregate, FannQuery};
use fannr::roadnet::{Graph, GraphBuilder};

/// Fig. 1 rebuilt (same construction as the fann-core unit tests):
/// p1..p9 -> ids 0..8, q1 -> 9, q2 -> 10, q3 = p4 (3), q4 = p5 (4).
fn figure1() -> (Graph, Vec<u32>, Vec<u32>) {
    let mut b = GraphBuilder::new();
    for i in 0..9 {
        b.add_node(i as f64, 0.0);
    }
    b.add_node(2.5, 0.0); // q1
    b.add_node(3.5, 0.0); // q2
    b.add_edge(1, 9, 10);
    b.add_edge(9, 2, 2);
    b.add_edge(2, 10, 2);
    b.add_edge(10, 5, 9);
    b.add_edge(1, 3, 12);
    b.add_edge(1, 4, 16);
    b.add_edge(0, 1, 30);
    b.add_edge(5, 6, 25);
    b.add_edge(6, 7, 25);
    b.add_edge(7, 8, 25);
    (b.build(), (0..9).collect(), vec![9, 10, 3, 4])
}

#[test]
fn every_algorithm_reproduces_figure1() {
    let (g, p, q) = figure1();
    let rtree = build_p_rtree(&g, &p);

    // (phi, agg, expected p*, expected d*)
    let cases = [
        (1.0, Aggregate::Max, 1u32, 16u64),
        (1.0, Aggregate::Sum, 1, 52),
        (0.5, Aggregate::Max, 2, 2),
        (0.5, Aggregate::Sum, 2, 4),
    ];
    for (phi, agg, want_p, want_d) in cases {
        let query = FannQuery::new(&p, &q, phi, agg);
        let ine = InePhi::new(&g, &q);
        let checks = [
            ("GD", gd(&query, &ine)),
            ("R-List", r_list(&g, &query, &ine)),
            ("IER-kNN", ier_knn(&g, &query, &rtree, &ine)),
        ];
        for (name, a) in checks {
            let a = a.unwrap();
            assert_eq!(
                (a.p_star, a.dist),
                (want_p, want_d),
                "{name} phi={phi} {agg}"
            );
        }
        if agg == Aggregate::Max {
            let a = exact_max(&g, &query).unwrap();
            assert_eq!((a.p_star, a.dist), (want_p, want_d), "Exact-max phi={phi}");
        } else {
            // APX-sum: exact on the paper's §IV-B running example
            // (phi = 0.5, candidates {p3, p4, p5} contain the optimum);
            // at phi = 1 the optimum p2 is not a candidate, so only the
            // Theorem 1 bound holds (it returns p3 with sum 56 <= 3*52).
            let a = apx_sum(&g, &query, &ine).unwrap();
            if phi == 0.5 {
                assert_eq!((a.p_star, a.dist), (want_p, want_d), "APX-sum phi={phi}");
            } else {
                assert!(
                    a.dist >= want_d && a.dist <= 3 * want_d,
                    "APX-sum phi={phi}"
                );
            }
        }
    }
}

#[test]
fn figure1_flexible_subset_is_q1_q2() {
    let (g, p, q) = figure1();
    let query = FannQuery::new(&p, &q, 0.5, Aggregate::Sum);
    let ine = InePhi::new(&g, &q);
    let a = gd(&query, &ine).unwrap();
    let mut subset = a.subset;
    subset.sort_unstable();
    assert_eq!(subset, vec![9, 10]); // q1, q2
}

#[test]
fn figure1_topk_ranks_p3_first() {
    let (g, p, q) = figure1();
    let query = FannQuery::new(&p, &q, 0.5, Aggregate::Max);
    let ine = InePhi::new(&g, &q);
    let rtree = build_p_rtree(&g, &p);
    for (name, ans) in [
        ("gd", gd_topk(&query, &ine, 3)),
        ("rlist", rlist_topk(&g, &query, &ine, 3)),
        ("ier", ier_topk(&g, &query, &rtree, &ine, 3)),
        ("exact-max", exact_max_topk(&g, &query, 3)),
    ] {
        assert_eq!(ans[0], (2, 2), "{name}: p3 must rank first");
        assert!(ans.windows(2).all(|w| w[0].1 <= w[1].1), "{name}: sorted");
    }
}
