//! Persistence round-trips through real files: the build-once / ship-index
//! deployment story (hub labels and G-tree), plus Engine integration.

use fannr::fann::engine::Engine;
use fannr::fann::Aggregate;
use fannr::gtree::{GTree, GTreeParams};
use fannr::hublabel::HubLabels;

#[test]
fn labels_survive_disk_roundtrip_and_power_engine() {
    let graph = fannr::workload::synth::road_network(900, &mut fannr::workload::rng(77));
    let labels = HubLabels::build(&graph);

    let dir = std::env::temp_dir().join(format!("fannr-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("labels.bin");
    std::fs::write(&path, labels.to_bytes()).unwrap();
    let loaded = HubLabels::from_bytes(&std::fs::read(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();

    let mut rng = fannr::workload::rng(78);
    let p = fannr::workload::points::uniform_data_points(&graph, 0.05, &mut rng);
    let q = fannr::workload::points::uniform_query_points(&graph, 10, 0.5, &mut rng);

    let fresh = Engine::new(&graph).with_labels();
    let revived = Engine::new(&graph).with_prebuilt_labels(loaded);
    for agg in [Aggregate::Sum, Aggregate::Max] {
        let a = fresh.query(&p, &q, 0.5, agg).unwrap().unwrap();
        let b = revived.query(&p, &q, 0.5, agg).unwrap().unwrap();
        assert_eq!(a.dist, b.dist, "{agg}");
    }
}

#[test]
fn gtree_survives_disk_roundtrip() {
    let graph = fannr::workload::synth::road_network(700, &mut fannr::workload::rng(79));
    let tree = GTree::build_with_params(
        &graph,
        GTreeParams {
            fanout: 4,
            leaf_cap: 32,
        },
    );
    let dir = std::env::temp_dir().join(format!("fannr-test-gt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gtree.bin");
    std::fs::write(&path, tree.to_bytes()).unwrap();
    let loaded = GTree::from_bytes(&std::fs::read(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();

    for s in (0..graph.num_nodes() as u32).step_by(37) {
        for t in (0..graph.num_nodes() as u32).step_by(41) {
            assert_eq!(loaded.dist(&graph, s, t), tree.dist(&graph, s, t));
        }
    }
}
