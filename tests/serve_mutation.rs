//! Serving under mutation: the snapshot discipline.
//!
//! The engine owns an epoch-versioned [`roadnet::NetworkSnapshot`] behind
//! a lock-free hot-swap cell, so a serving process adopts live weight
//! updates **in place** via the wire `update` op — no drain, no restart.
//! The invariant under test: a client issuing queries across a concurrent
//! weight update never observes an answer inconsistent with *both* the
//! pre-update and post-update networks — i.e. no torn state, no
//! half-applied weights, no answer computed partly on each version — and
//! once the update is acknowledged, every later answer is computed on the
//! new epoch (exactly, even while the hub labels are still stale).
//!
//! The drain + restart choreography from before this engine owned its
//! snapshots still works — operators may prefer it for topology changes —
//! so it is kept as a second test.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use fannr::fann::engine::Engine;
use fannr::fann::{Aggregate, FannAnswer};
use fannr::roadnet::{DynamicNetwork, Graph, WeightUpdate};
use fannr::serve::{Body, Client, Op, QuerySpec, Request, ServeConfig, Server, ShutdownHandle};

/// Sets the server's stop flag when dropped. A failed assertion inside a
/// `thread::scope` would otherwise skip the explicit shutdown call and
/// deadlock the implicit scope join on the still-running acceptor.
struct StopOnDrop(ShutdownHandle);

impl Drop for StopOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

fn expected(engine: &Engine, spec: &QuerySpec) -> Option<FannAnswer> {
    engine
        .query(&spec.p, &spec.q, spec.phi, spec.agg)
        .expect("valid query")
}

fn matches(body: &Body, want: &Option<FannAnswer>) -> bool {
    match (body, want) {
        (
            Body::Ok {
                p_star,
                dist,
                subset,
                ..
            },
            Some(a),
        ) => *p_star == a.p_star && *dist == a.dist && *subset == a.subset,
        (Body::Empty, None) => true,
        _ => false,
    }
}

fn serve_on(graph: &Graph) -> (Server, std::net::SocketAddr, Engine) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 32,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    (server, addr, Engine::new(graph))
}

fn workload(seed: u64, nodes: usize) -> (Graph, Vec<QuerySpec>) {
    let mut rng = fannr::workload::rng(seed);
    let base = fannr::workload::synth::road_network(nodes, &mut rng);
    let p = fannr::workload::points::uniform_data_points(&base, 0.08, &mut rng);
    let q = fannr::workload::points::uniform_query_points(&base, 5, 0.5, &mut rng);
    let specs = [0.25, 0.5, 0.75, 1.0]
        .iter()
        .flat_map(|&phi| {
            [Aggregate::Max, Aggregate::Sum].map(|agg| QuerySpec {
                p: p.clone(),
                q: q.clone(),
                phi,
                agg,
                deadline_ms: None,
            })
        })
        .collect();
    (base, specs)
}

/// Inflate every third edge 8x: drastic enough that some answers change,
/// and increase-only, so even stale hub labels must answer exactly.
fn inflation(base: &Graph) -> Vec<WeightUpdate> {
    let mut updates = Vec::new();
    let mut i = 0usize;
    for u in 0..base.num_nodes() as u32 {
        for (v, w) in base.neighbors(u) {
            if u < v {
                if i.is_multiple_of(3) {
                    updates.push(WeightUpdate {
                        u,
                        v,
                        w: w.saturating_mul(8).max(1),
                    });
                }
                i += 1;
            }
        }
    }
    updates
}

/// The tentpole invariant: one label-backed server, queries hammering it
/// while a second connection pushes a live `update` batch. Every answer
/// matches exactly one of the two epochs; every answer *after* the update
/// is acknowledged matches the new epoch; nothing is shed or cancelled;
/// the background label repair converges while the server keeps answering.
#[test]
fn live_update_swaps_epochs_without_drain() {
    let (base, specs) = workload(29, 400);
    let updates = inflation(&base);
    let patches: Vec<(u32, u32, u32)> = updates.iter().map(|up| (up.u, up.v, up.w)).collect();
    let post = base
        .with_patched_weights(&patches)
        .expect("edges all exist");

    let engine_pre = Engine::new(&base);
    let engine_post = Engine::new(&post);
    let want_pre: Vec<_> = specs.iter().map(|s| expected(&engine_pre, s)).collect();
    let want_post: Vec<_> = specs.iter().map(|s| expected(&engine_post, s)).collect();
    assert!(
        want_pre != want_post,
        "weight update changed no answer; the test would be vacuous"
    );

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 32,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle();
    // Labels make the update leg interesting: the server must answer
    // exactly *through* the staleness window, not just after repair.
    let engine = Engine::new(&base).with_labels();

    let acked = AtomicBool::new(false);
    let answered = AtomicUsize::new(0);
    let summary = thread::scope(|scope| {
        let _stop_guard = StopOnDrop(server.shutdown_handle());
        let serving = scope.spawn(|| server.run(&engine).expect("serve"));

        let acked_ref = &acked;
        let answered_ref = &answered;
        let specs_ref = &specs;
        let want_pre_ref = &want_pre;
        let want_post_ref = &want_post;
        let client = scope.spawn(move || {
            let mut conn = Client::connect(addr).expect("connect");
            conn.set_read_timeout(Some(Duration::from_secs(60)))
                .expect("timeout");
            let mut checked = 0usize;
            let mut post_only = 0usize;
            let deadline = Instant::now() + Duration::from_secs(120);
            // Keep querying until a full spec sweep has been verified on
            // the new epoch (the operator paces itself off `answered`, so
            // neither side can race past the other).
            let mut round = 0usize;
            while post_only < specs_ref.len() {
                assert!(
                    Instant::now() < deadline,
                    "no post-acknowledgement sweep within the deadline \
                     (acked: {}, checked: {checked})",
                    acked_ref.load(Ordering::SeqCst),
                );
                for (i, spec) in specs_ref.iter().enumerate() {
                    // Sampled before the send: if the update was already
                    // acknowledged, this query is admitted strictly after
                    // the swap and must see the new epoch.
                    let after_ack = acked_ref.load(Ordering::SeqCst);
                    let resp = conn
                        .call(&Request {
                            id: Some(format!("r{round}-{i}")),
                            op: Op::Query(spec.clone()),
                        })
                        .expect("query");
                    match &resp.body {
                        Body::Ok { .. } | Body::Empty => {
                            let pre_ok = matches(&resp.body, &want_pre_ref[i]);
                            let post_ok = matches(&resp.body, &want_post_ref[i]);
                            assert!(
                                pre_ok || post_ok,
                                "torn answer for spec {i}: {:?} matches neither epoch",
                                resp.body
                            );
                            if after_ack {
                                assert!(
                                    post_ok,
                                    "spec {i} answered on the old epoch after the update \
                                     was acknowledged: {:?}",
                                    resp.body
                                );
                                post_only += 1;
                            }
                            checked += 1;
                            answered_ref.fetch_add(1, Ordering::SeqCst);
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                round += 1;
            }
            (checked, post_only)
        });

        // Operator connection: wait for a full sweep of pre-update traffic
        // to be answered, then push the whole batch in one atomic `update`.
        let warmup = Instant::now() + Duration::from_secs(60);
        while answered.load(Ordering::SeqCst) < specs.len() {
            assert!(Instant::now() < warmup, "no pre-update answers observed");
            thread::sleep(Duration::from_millis(5));
        }
        let mut op_conn = Client::connect(addr).expect("operator connect");
        op_conn
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        let resp = op_conn
            .call(&Request {
                id: Some("up".into()),
                op: Op::Update(updates.clone()),
            })
            .expect("update");
        match resp.body {
            Body::Updated { epoch, applied } => {
                assert_eq!(epoch, 1, "first update batch publishes epoch 1");
                assert_eq!(applied, updates.len() as u64);
            }
            other => panic!("update rejected: {other:?}"),
        }
        acked.store(true, Ordering::SeqCst);

        // Health must report the new epoch immediately, and the background
        // label repair must converge while the client keeps querying.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let resp = op_conn
                .call(&Request {
                    id: Some("h".into()),
                    op: Op::Health,
                })
                .expect("health");
            match resp.body {
                Body::Health(h) => {
                    assert_eq!(h.epoch, 1, "health must report the live epoch");
                    if !h.stale {
                        break;
                    }
                    assert!(
                        Instant::now() < deadline,
                        "label repair never converged: {h:?}"
                    );
                    thread::sleep(Duration::from_millis(25));
                }
                other => panic!("unexpected response {other:?}"),
            }
        }

        let (checked, post_only) = client.join().expect("client thread");
        assert!(checked > specs.len(), "no pre-update answers were verified");
        assert!(
            post_only >= specs.len(),
            "client exited without a full post-acknowledgement sweep"
        );

        handle.shutdown();
        serving.join().expect("server thread")
    });

    // Nothing was shed or cancelled: the swap admitted every query, and
    // every admitted query was answered.
    assert_eq!(summary.metrics.shed, 0, "{:?}", summary.metrics);
    assert_eq!(summary.metrics.cancelled, 0, "{:?}", summary.metrics);
    assert_eq!(summary.metrics.errors, 0, "{:?}", summary.metrics);
    assert_eq!(summary.metrics.updates, 1);
    assert_eq!(
        summary.metrics.requests,
        summary.metrics.ok + summary.metrics.empty
    );
}

/// The pre-snapshot-engine choreography: drain the old server, start a
/// new one on a fresh snapshot. Still supported (an operator may prefer a
/// full restart for topology changes), still torn-answer-free.
#[test]
fn concurrent_weight_update_never_yields_torn_answers() {
    let (base, specs) = workload(29, 400);

    // The mutable network and its two immutable snapshots.
    let mut net = DynamicNetwork::from_graph(&base);
    let pre = net.snapshot();
    for up in inflation(&base) {
        net.set_weight(up.u, up.v, up.w).expect("edge exists");
    }
    let post = net.snapshot();
    assert!(net.version() > 0, "mutations must bump the version");

    let engine_pre = Engine::new(&pre);
    let engine_post = Engine::new(&post);
    let want_pre: Vec<_> = specs.iter().map(|s| expected(&engine_pre, s)).collect();
    let want_post: Vec<_> = specs.iter().map(|s| expected(&engine_post, s)).collect();
    assert!(
        want_pre != want_post,
        "weight update changed no answer; the test would be vacuous"
    );

    // Serve the pre snapshot; hammer it from a client thread while the
    // "operator" swaps in the post snapshot via drain + restart.
    let (server1, addr1, engine1) = serve_on(&pre);
    let (server2, addr2, engine2) = serve_on(&post);
    let handle1 = server1.shutdown_handle();
    let handle2 = server2.shutdown_handle();
    let swapped = AtomicBool::new(false);

    thread::scope(|scope| {
        let _stop_guard1 = StopOnDrop(server1.shutdown_handle());
        let _stop_guard2 = StopOnDrop(server2.shutdown_handle());
        let s1 = scope.spawn(|| server1.run(&engine1).expect("server 1"));
        let s2 = scope.spawn(|| server2.run(&engine2).expect("server 2"));

        let swapped_ref = &swapped;
        let specs_ref = &specs;
        let want_pre_ref = &want_pre;
        let want_post_ref = &want_post;
        let client = scope.spawn(move || {
            let mut checked = 0usize;
            let mut conn = Client::connect(addr1).expect("connect pre");
            for round in 0..40 {
                // Follow the swap mid-stream, like a client reconnecting
                // after the old endpoint drains.
                if swapped_ref.load(Ordering::SeqCst) && round == 20 {
                    conn = Client::connect(addr2).expect("connect post");
                }
                for (i, spec) in specs_ref.iter().enumerate() {
                    let req = Request {
                        id: Some(format!("r{round}-{i}")),
                        op: Op::Query(spec.clone()),
                    };
                    let resp = match conn.call(&req) {
                        Ok(r) => r,
                        Err(_) => {
                            // The pre server drained under us; reconnect
                            // to the post endpoint and retry there.
                            conn = Client::connect(addr2).expect("reconnect post");
                            conn.call(&req).expect("retry on post")
                        }
                    };
                    match &resp.body {
                        Body::Ok { .. } | Body::Empty => {
                            let pre_ok = matches(&resp.body, &want_pre_ref[i]);
                            let post_ok = matches(&resp.body, &want_post_ref[i]);
                            assert!(
                                pre_ok || post_ok,
                                "torn answer for spec {i}: {:?} matches neither snapshot",
                                resp.body
                            );
                            checked += 1;
                        }
                        Body::Shed => {} // admission control, not an answer
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            }
            checked
        });

        // Let some pre-snapshot traffic through, then swap.
        thread::sleep(Duration::from_millis(100));
        swapped.store(true, Ordering::SeqCst);
        handle1.shutdown();
        let summary1 = s1.join().expect("server 1 thread");
        // Drain guarantee: everything the old server admitted was
        // answered, not dropped on the floor.
        assert_eq!(
            summary1.metrics.requests,
            summary1.metrics.ok
                + summary1.metrics.empty
                + summary1.metrics.cancelled
                + summary1.metrics.errors
        );

        let checked = client.join().expect("client thread");
        assert!(checked > 0, "no answers were verified");

        handle2.shutdown();
        s2.join().expect("server 2 thread");
    });
}
