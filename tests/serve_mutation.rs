//! Serving under mutation: the snapshot discipline.
//!
//! The engine borrows an immutable [`Graph`]; live updates go through
//! [`DynamicNetwork`], and a serving process adopts them by draining the
//! old server and starting a new one on a fresh snapshot. The invariant
//! under test: a client issuing queries across a concurrent weight update
//! never observes an answer inconsistent with *both* the pre-update and
//! post-update snapshots — i.e. no torn state, no half-applied weights,
//! no answer computed partly on each version.

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

use fannr::fann::engine::Engine;
use fannr::fann::{Aggregate, FannAnswer};
use fannr::roadnet::{DynamicNetwork, Graph};
use fannr::serve::{Body, Client, Op, QuerySpec, Request, ServeConfig, Server};

fn expected(engine: &Engine, spec: &QuerySpec) -> Option<FannAnswer> {
    engine
        .query(&spec.p, &spec.q, spec.phi, spec.agg)
        .expect("valid query")
}

fn matches(body: &Body, want: &Option<FannAnswer>) -> bool {
    match (body, want) {
        (
            Body::Ok {
                p_star,
                dist,
                subset,
                ..
            },
            Some(a),
        ) => *p_star == a.p_star && *dist == a.dist && *subset == a.subset,
        (Body::Empty, None) => true,
        _ => false,
    }
}

fn serve_on<'g>(graph: &'g Graph) -> (Server, std::net::SocketAddr, Engine<'g>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 32,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    (server, addr, Engine::new(graph))
}

#[test]
fn concurrent_weight_update_never_yields_torn_answers() {
    let mut rng = fannr::workload::rng(29);
    let base = fannr::workload::synth::road_network(400, &mut rng);
    let p = fannr::workload::points::uniform_data_points(&base, 0.08, &mut rng);
    let q = fannr::workload::points::uniform_query_points(&base, 5, 0.5, &mut rng);

    // The mutable network and its two immutable snapshots.
    let mut net = DynamicNetwork::from_graph(&base);
    let pre = net.snapshot();
    // Inflate a third of all edge weights 8x — drastic enough that some
    // answers must change between the snapshots.
    let edges: Vec<(u32, u32, u32)> = {
        let mut es = Vec::new();
        for u in 0..pre.num_nodes() as u32 {
            for (v, w) in pre.neighbors(u) {
                if u < v {
                    es.push((u, v, w));
                }
            }
        }
        es
    };
    for (i, &(u, v, w)) in edges.iter().enumerate() {
        if i % 3 == 0 {
            net.set_weight(u, v, w.saturating_mul(8).max(1))
                .expect("edge exists");
        }
    }
    let post = net.snapshot();
    assert!(net.version() > 0, "mutations must bump the version");

    let specs: Vec<QuerySpec> = [0.25, 0.5, 0.75, 1.0]
        .iter()
        .flat_map(|&phi| {
            [Aggregate::Max, Aggregate::Sum].map(|agg| QuerySpec {
                p: p.clone(),
                q: q.clone(),
                phi,
                agg,
                deadline_ms: None,
            })
        })
        .collect();

    let engine_pre = Engine::new(&pre);
    let engine_post = Engine::new(&post);
    let want_pre: Vec<_> = specs.iter().map(|s| expected(&engine_pre, s)).collect();
    let want_post: Vec<_> = specs.iter().map(|s| expected(&engine_post, s)).collect();
    assert!(
        want_pre != want_post,
        "weight update changed no answer; the test would be vacuous"
    );

    // Serve the pre snapshot; hammer it from a client thread while the
    // "operator" swaps in the post snapshot via drain + restart.
    let (server1, addr1, engine1) = serve_on(&pre);
    let (server2, addr2, engine2) = serve_on(&post);
    let handle1 = server1.shutdown_handle();
    let handle2 = server2.shutdown_handle();
    let swapped = AtomicBool::new(false);

    thread::scope(|scope| {
        let s1 = scope.spawn(|| server1.run(&engine1).expect("server 1"));
        let s2 = scope.spawn(|| server2.run(&engine2).expect("server 2"));

        let swapped_ref = &swapped;
        let specs_ref = &specs;
        let want_pre_ref = &want_pre;
        let want_post_ref = &want_post;
        let client = scope.spawn(move || {
            let mut checked = 0usize;
            let mut conn = Client::connect(addr1).expect("connect pre");
            for round in 0..40 {
                // Follow the swap mid-stream, like a client reconnecting
                // after the old endpoint drains.
                if swapped_ref.load(Ordering::SeqCst) && round == 20 {
                    conn = Client::connect(addr2).expect("connect post");
                }
                for (i, spec) in specs_ref.iter().enumerate() {
                    let req = Request {
                        id: Some(format!("r{round}-{i}")),
                        op: Op::Query(spec.clone()),
                    };
                    let resp = match conn.call(&req) {
                        Ok(r) => r,
                        Err(_) => {
                            // The pre server drained under us; reconnect
                            // to the post endpoint and retry there.
                            conn = Client::connect(addr2).expect("reconnect post");
                            conn.call(&req).expect("retry on post")
                        }
                    };
                    match &resp.body {
                        Body::Ok { .. } | Body::Empty => {
                            let pre_ok = matches(&resp.body, &want_pre_ref[i]);
                            let post_ok = matches(&resp.body, &want_post_ref[i]);
                            assert!(
                                pre_ok || post_ok,
                                "torn answer for spec {i}: {:?} matches neither snapshot",
                                resp.body
                            );
                            checked += 1;
                        }
                        Body::Shed => {} // admission control, not an answer
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            }
            checked
        });

        // Let some pre-snapshot traffic through, then swap.
        thread::sleep(Duration::from_millis(100));
        swapped.store(true, Ordering::SeqCst);
        handle1.shutdown();
        let summary1 = s1.join().expect("server 1 thread");
        // Drain guarantee: everything the old server admitted was
        // answered, not dropped on the floor.
        assert_eq!(
            summary1.metrics.requests,
            summary1.metrics.ok
                + summary1.metrics.empty
                + summary1.metrics.cancelled
                + summary1.metrics.errors
        );

        let checked = client.join().expect("client thread");
        assert!(checked > 0, "no answers were verified");

        handle2.shutdown();
        s2.join().expect("server 2 thread");
    });
}
