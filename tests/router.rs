//! End-to-end tests for the partitioned serving tier: a real shard
//! deployment (N `Server`s in shard mode + one `Router`) over real TCP
//! sockets, checked bit-for-bit against a single in-process [`Engine`].
//!
//! The contract under test (DESIGN.md §12): the router is
//! indistinguishable from one server — same wire protocol, same answers,
//! same tie-breaking — except that a degraded shard degrades only queries
//! its region could still influence, surfaced as the typed `upstream`
//! error.

use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;

use fannr::fann::engine::Engine;
use fannr::fann::{flex_k, Aggregate};
use fannr::roadnet::dijkstra::dijkstra_all;
use fannr::roadnet::{Graph, GraphBuilder, ShardMap, WeightUpdate, INF};
use fannr::router::{Router, RouterConfig};
use fannr::serve::{Body, Client, Op, QuerySpec, Request, ServeConfig, Server, ShardRole};
use proptest::prelude::*;

fn test_graph(seed: u64, nodes: usize) -> Graph {
    let mut rng = workload::rng(seed);
    workload::synth::road_network(nodes, &mut rng)
}

/// Deduplicated P and Q drawn from the workload generators, so
/// `phi = 1/|Q|` is well-defined on the wire and in the engine alike.
fn pq(graph: &Graph, seed: u64) -> (Vec<u32>, Vec<u32>) {
    let mut rng = workload::rng(seed);
    let p = workload::points::uniform_data_points(graph, 0.05, &mut rng);
    let mut q = workload::points::uniform_query_points(graph, 6, 0.5, &mut rng);
    q.sort_unstable();
    q.dedup();
    (p, q)
}

/// Trips a shutdown handle on drop so a panicking test body cannot leave
/// a server or router thread spinning inside `thread::scope`.
struct Guard<F: Fn()>(F);

impl<F: Fn()> Drop for Guard<F> {
    fn drop(&mut self) {
        (self.0)()
    }
}

/// Launch one shard server per part plus the router, run `f` against the
/// deployment, then drain everything. `mk_engine` builds each shard's
/// engine, so every strategy configuration (labels, approx-sum) can be
/// deployed.
fn with_deployment<T>(
    graph: &Graph,
    parts: &[Vec<u32>],
    mk_engine: impl Fn() -> Engine,
    f: impl FnOnce(SocketAddr, &[SocketAddr]) -> T,
) -> T {
    let map = Arc::new(ShardMap::build(graph, parts));
    thread::scope(|scope| {
        let mut shard_addrs = Vec::new();
        let mut handles = Vec::new();
        for s in 0..parts.len() as u32 {
            let engine = mk_engine();
            let server = Server::bind(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                shard: Some(ShardRole {
                    id: s,
                    map: Arc::clone(&map),
                }),
                ..ServeConfig::default()
            })
            .expect("bind shard");
            shard_addrs.push(server.local_addr().expect("shard addr"));
            handles.push(server.shutdown_handle());
            scope.spawn(move || {
                let _ = server.run(&engine);
            });
        }
        let router = Router::bind(RouterConfig::new(
            "127.0.0.1:0",
            shard_addrs.iter().map(|a| a.to_string()).collect(),
            Arc::clone(&map),
            graph.clone(),
        ))
        .expect("bind router");
        let router_addr = router.local_addr().expect("router addr");
        let router_handle = router.shutdown_handle();
        scope.spawn(move || {
            let _ = router.run();
        });
        let guard = Guard(move || {
            router_handle.shutdown();
            for h in &handles {
                h.shutdown();
            }
        });
        let out = f(router_addr, &shard_addrs);
        drop(guard);
        out
    })
}

fn query_req(id: &str, p: &[u32], q: &[u32], phi: f64, agg: Aggregate) -> Request {
    Request {
        id: Some(id.to_string()),
        op: Op::Query(QuerySpec {
            p: p.to_vec(),
            q: q.to_vec(),
            phi,
            agg,
            deadline_ms: None,
        }),
    }
}

/// The wire answer reduced to what must match the engine bit-for-bit.
fn wire_answer(body: &Body) -> Option<(u32, u64, Vec<u32>, String)> {
    match body {
        Body::Ok {
            p_star,
            dist,
            subset,
            strategy,
            ..
        } => Some((*p_star, *dist, subset.clone(), strategy.clone())),
        Body::Empty => None,
        other => panic!("expected ok/empty, got {other:?}"),
    }
}

/// The FANN_R aggregate of `p` over the `k` nearest query points, straight
/// from the paper's definition — an independent oracle for tie detection.
fn flex_aggregate(g: &Graph, p: u32, q: &[u32], k: usize, agg: Aggregate) -> Option<u64> {
    let dist = dijkstra_all(g, p);
    let mut ds: Vec<u64> = q
        .iter()
        .map(|&qv| dist[qv as usize])
        .filter(|&d| d != INF)
        .collect();
    if ds.len() < k {
        return None;
    }
    ds.sort_unstable();
    match agg {
        Aggregate::Max => Some(ds[k - 1]),
        Aggregate::Sum => Some(ds[..k].iter().sum()),
    }
}

/// Whether the optimum is achieved by exactly one candidate. The scan-order
/// strategies (R-List, IER-kNN) only promise bit-identical `p_star` across
/// different P orderings — which is what sharding induces — when the
/// optimum is unique; on ties the merged answer still has the optimal
/// distance, just possibly a different witness.
fn optimum_is_unique(g: &Graph, p: &[u32], q: &[u32], k: usize, agg: Aggregate) -> bool {
    let best = p
        .iter()
        .filter_map(|&c| flex_aggregate(g, c, q, k, agg))
        .min();
    match best {
        Some(b) => {
            p.iter()
                .filter(|&&c| flex_aggregate(g, c, q, k, agg) == Some(b))
                .count()
                == 1
        }
        None => true,
    }
}

/// The full strategy matrix, deterministically: every served strategy
/// (Exact-max, R-List/INE, IER-kNN/PHL, APX-sum/INE) × both aggregates ×
/// phi ∈ {1/|Q|, 0.5, 1}, each answer through a 2- and a 3-shard
/// deployment, bit-identical to the single engine — including the
/// strategy name, proving the shards actually ran that strategy.
#[test]
fn matrix_bit_identical_to_single_engine() {
    let g = test_graph(7, 300);
    let (p, q) = pq(&g, 8);
    let phis = [1.0 / q.len() as f64, 0.5, 1.0];

    // (engine builder, aggregates it serves exactly)
    type Mk<'a> = Box<dyn Fn() -> Engine + 'a>;
    let configs: Vec<(&str, Mk, Vec<Aggregate>)> = vec![
        (
            "index-free",
            Box::new(|| Engine::new(&g)),
            vec![Aggregate::Max, Aggregate::Sum],
        ),
        (
            "labels",
            Box::new(|| Engine::new(&g).with_labels()),
            vec![Aggregate::Max, Aggregate::Sum],
        ),
    ];
    for shards in [2usize, 3] {
        let parts = fannr::gtree::top_level_cut(&g, shards);
        for (tag, mk, aggs) in &configs {
            let single = mk();
            with_deployment(&g, &parts, mk, |router_addr, _| {
                let mut client = Client::connect(router_addr).expect("connect");
                for &agg in aggs {
                    for (pi, &phi) in phis.iter().enumerate() {
                        let id = format!("{tag}-{shards}-{agg}-{pi}");
                        let resp = client
                            .call(&query_req(&id, &p, &q, phi, agg))
                            .expect("query");
                        let got = wire_answer(&resp.body);
                        let want = single.query(&p, &q, phi, agg).expect("valid query");
                        let want = want.map(|a| {
                            (
                                a.p_star,
                                a.dist,
                                a.subset,
                                single.strategy_for(agg).name().to_string(),
                            )
                        });
                        assert_eq!(got, want, "divergence on {id}");
                    }
                }
            });
        }
    }
}

/// APX-sum is not decomposable over arbitrary P splits (each shard's
/// candidate heuristic sees only its slice), so its bit-identity leg uses
/// the documented deployment shape: P colocated in one shard. The second
/// shard owns a single non-candidate node and must never be contacted.
#[test]
fn apx_sum_bit_identical_when_p_colocated() {
    let g = test_graph(11, 300);
    let (p, q) = pq(&g, 12);
    let outsider = (0..g.num_nodes() as u32)
        .find(|v| !p.contains(v))
        .expect("a node outside P");
    let parts = vec![
        (0..g.num_nodes() as u32)
            .filter(|&v| v != outsider)
            .collect::<Vec<_>>(),
        vec![outsider],
    ];
    let mk = || Engine::new(&g).allow_approx_sum(true);
    let single = mk();
    with_deployment(&g, &parts, mk, |router_addr, shard_addrs| {
        let mut client = Client::connect(router_addr).expect("connect");
        for (i, phi) in [1.0 / q.len() as f64, 0.5, 1.0].into_iter().enumerate() {
            let id = format!("apx-{i}");
            let resp = client
                .call(&query_req(&id, &p, &q, phi, Aggregate::Sum))
                .expect("query");
            let got = wire_answer(&resp.body);
            let want = single
                .query(&p, &q, phi, Aggregate::Sum)
                .expect("valid query")
                .map(|a| {
                    (
                        a.p_star,
                        a.dist,
                        a.subset,
                        single.strategy_for(Aggregate::Sum).name().to_string(),
                    )
                });
            assert_eq!(got, want, "divergence on {id}");
        }
        // The colocated deployment never touches the empty shard.
        let mut s1 = Client::connect(shard_addrs[1]).expect("connect shard 1");
        let resp = s1
            .call(&Request {
                id: None,
                op: Op::Metrics,
            })
            .expect("metrics");
        match resp.body {
            Body::Metrics(m) => assert_eq!(m.requests, 0, "empty shard was queried"),
            other => panic!("expected metrics, got {other:?}"),
        }
    });
}

/// Weight updates route only to the shard owning the edge; the ack carries
/// that shard's new epoch, the other shard stays at its old epoch, and the
/// router's health reports the deployment maximum. Shard health also
/// carries the shard observability fields.
#[test]
fn update_routes_to_owning_shard_only() {
    let g = test_graph(7, 300);
    let parts = fannr::gtree::top_level_cut(&g, 2);
    let map = ShardMap::build(&g, &parts);
    // An edge owned by shard 1, with an always-admissible doubled weight.
    let (u, v, w) = (0..g.num_nodes() as u32)
        .flat_map(|a| g.neighbors(a).map(move |(b, w)| (a, b, w)))
        .find(|&(a, b, _)| map.edge_owner(a, b) == 1)
        .expect("an edge owned by shard 1");
    with_deployment(
        &g,
        &parts,
        || Engine::new(&g),
        |router_addr, shard_addrs| {
            let mut client = Client::connect(router_addr).expect("connect");
            let resp = client
                .call(&Request {
                    id: Some("up".into()),
                    op: Op::Update(vec![WeightUpdate { u, v, w: w * 2 }]),
                })
                .expect("update");
            match resp.body {
                Body::Updated { epoch, applied } => {
                    assert_eq!(applied, 1);
                    assert_eq!(epoch, 1);
                }
                other => panic!("expected updated ack, got {other:?}"),
            }
            let health = |addr: SocketAddr| -> fannr::serve::HealthInfo {
                let mut c = Client::connect(addr).expect("connect");
                match c
                    .call(&Request {
                        id: None,
                        op: Op::Health,
                    })
                    .expect("health")
                    .body
                {
                    Body::Health(h) => h,
                    other => panic!("expected health, got {other:?}"),
                }
            };
            let h0 = health(shard_addrs[0]);
            let h1 = health(shard_addrs[1]);
            assert_eq!(h0.epoch, 0, "non-owning shard must not apply the edge");
            assert_eq!(h1.epoch, 1, "owning shard must apply the edge");
            assert_eq!(h0.shard, Some(0));
            assert_eq!(h1.shard, Some(1));
            assert_eq!(h0.owned_nodes, parts[0].len() as u64);
            assert_eq!(h1.owned_nodes, parts[1].len() as u64);
            assert!(h0.region.is_some() && h1.region.is_some());
            // The router's deployment view is the maximum shard epoch.
            assert_eq!(health(router_addr).epoch, 1);
            // Queries after the update still match a local engine that applied
            // the same update.
            let engine = Engine::new(&g);
            engine
                .apply_updates(&[WeightUpdate { u, v, w: w * 2 }])
                .expect("local update");
            let (p, q) = pq(&g, 21);
            for agg in [Aggregate::Max, Aggregate::Sum] {
                let resp = client
                    .call(&query_req("post", &p, &q, 0.5, agg))
                    .expect("query");
                let got = wire_answer(&resp.body).map(|(ps, d, s, _)| (ps, d, s));
                let want = engine
                    .query(&p, &q, 0.5, agg)
                    .expect("valid")
                    .map(|a| (a.p_star, a.dist, a.subset));
                assert_eq!(got, want, "post-update divergence ({agg})");
            }
        },
    );
}

/// An update stream through the router: one segment spanning both shards
/// is applied exactly once per owning shard with a merged ack, a duplicate
/// re-acks cumulatively without re-applying, a gap is rejected, and
/// post-stream answers match a local engine fed the same updates.
#[test]
fn update_stream_spans_shards_with_merged_acks() {
    let g = test_graph(7, 300);
    let parts = fannr::gtree::top_level_cut(&g, 2);
    let map = ShardMap::build(&g, &parts);
    // One edge owned by each shard, disjoint endpoints, doubled weights.
    let edge_owned_by = |s: u32, skip: Option<(u32, u32)>| {
        (0..g.num_nodes() as u32)
            .flat_map(|a| g.neighbors(a).map(move |(b, w)| (a, b, w)))
            .find(|&(a, b, _)| {
                map.edge_owner(a, b) == s
                    && skip.is_none_or(|(x, y)| a != x && a != y && b != x && b != y)
            })
            .unwrap_or_else(|| panic!("an edge owned by shard {s}"))
    };
    let (u0, v0, w0) = edge_owned_by(0, None);
    let (u1, v1, w1) = edge_owned_by(1, Some((u0, v0)));
    let seg1 = vec![
        WeightUpdate {
            u: u0,
            v: v0,
            w: w0 * 2,
        },
        WeightUpdate {
            u: u1,
            v: v1,
            w: w1 * 2,
        },
    ];
    let seg2 = vec![WeightUpdate {
        u: u0,
        v: v0,
        w: w0 * 3,
    }];
    let stream_req = |id: &str, seq: u64, updates: &[WeightUpdate]| Request {
        id: Some(id.to_string()),
        op: Op::UpdateStream {
            seq,
            updates: updates.to_vec(),
        },
    };
    with_deployment(
        &g,
        &parts,
        || Engine::new(&g),
        |router_addr, shard_addrs| {
            let mut client = Client::connect(router_addr).expect("connect");

            // A gap before anything was sent is rejected without applying.
            let resp = client.call(&stream_req("gap", 3, &seg1)).expect("call");
            assert!(
                matches!(
                    resp.body,
                    Body::StreamError {
                        expected: 1,
                        got: 3,
                        ..
                    }
                ),
                "{resp:?}"
            );

            // Segment 1 spans both shards: each applies its edge, the
            // merged ack sums them.
            let resp = client.call(&stream_req("s1", 1, &seg1)).expect("call");
            match resp.body {
                Body::StreamAck { seq, applied, .. } => {
                    assert_eq!(seq, 1);
                    assert_eq!(applied, 2, "one edge per shard");
                }
                other => panic!("expected ack, got {other:?}"),
            }

            // Segment 2 touches only shard 0; shard 1 still advances (it
            // acks the foreign segment with applied=0), keeping acks
            // cumulative.
            let resp = client.call(&stream_req("s2", 2, &seg2)).expect("call");
            match resp.body {
                Body::StreamAck { seq, applied, .. } => {
                    assert_eq!(seq, 2);
                    assert_eq!(applied, 1);
                }
                other => panic!("expected ack, got {other:?}"),
            }

            // Duplicate: cumulative re-ack, nothing re-applied anywhere.
            let resp = client.call(&stream_req("dup", 1, &seg1)).expect("call");
            match resp.body {
                Body::StreamAck { seq, applied, .. } => {
                    assert_eq!(seq, 2, "cumulative ack");
                    assert_eq!(applied, 0);
                }
                other => panic!("expected ack, got {other:?}"),
            }

            // Each shard applied exactly the segments carrying its edges:
            // epochs count applied batches, and the duplicate added none.
            let epoch_of = |addr: SocketAddr| -> u64 {
                let mut c = Client::connect(addr).expect("connect");
                match c
                    .call(&Request {
                        id: None,
                        op: Op::Health,
                    })
                    .expect("health")
                    .body
                {
                    Body::Health(h) => h.epoch,
                    other => panic!("expected health, got {other:?}"),
                }
            };
            assert_eq!(epoch_of(shard_addrs[0]), 2, "shard 0 applied both");
            assert_eq!(epoch_of(shard_addrs[1]), 1, "shard 1 applied seg1 only");

            // Router metrics count client-facing segments, not fan-out.
            let resp = client
                .call(&Request {
                    id: Some("m".into()),
                    op: Op::Metrics,
                })
                .expect("metrics");
            match resp.body {
                Body::Metrics(m) => {
                    assert_eq!(m.stream_segments, 2, "{m:?}");
                    assert_eq!(m.stream_updates, 3, "{m:?}");
                }
                other => panic!("expected metrics, got {other:?}"),
            }

            // Post-stream answers match a local engine fed the same
            // updates in the same order.
            let engine = Engine::new(&g);
            engine.apply_updates(&seg1).expect("local seg1");
            engine.apply_updates(&seg2).expect("local seg2");
            let (p, q) = pq(&g, 33);
            for agg in [Aggregate::Max, Aggregate::Sum] {
                let resp = client
                    .call(&query_req("post", &p, &q, 0.5, agg))
                    .expect("query");
                let got = wire_answer(&resp.body).map(|(ps, d, s, _)| (ps, d, s));
                let want = engine
                    .query(&p, &q, 0.5, agg)
                    .expect("valid")
                    .map(|a| (a.p_star, a.dist, a.subset));
                assert_eq!(got, want, "post-stream divergence ({agg})");
            }
        },
    );
}

/// A dead shard degrades only its region: queries whose candidates span it
/// fail with the typed `upstream` error naming the shard, queries entirely
/// inside live shards still answer exactly, and the router's metrics count
/// the upstream failure.
#[test]
fn one_shard_down_degrades_only_its_region() {
    let g = test_graph(7, 300);
    let parts = fannr::gtree::top_level_cut(&g, 2);
    let (p, q) = pq(&g, 8);
    with_deployment(
        &g,
        &parts,
        || Engine::new(&g),
        |router_addr, shard_addrs| {
            let mut client = Client::connect(router_addr).expect("connect");
            // Warm both pools so the dead-connection retry path is exercised.
            let warm = client
                .call(&query_req("warm", &p, &q, 0.5, Aggregate::Max))
                .expect("warm query");
            assert!(matches!(warm.body, Body::Ok { .. }));

            // Drain shard 1 directly (not through the router).
            let mut s1 = Client::connect(shard_addrs[1]).expect("connect shard 1");
            let resp = s1
                .call(&Request {
                    id: None,
                    op: Op::Shutdown,
                })
                .expect("shutdown shard 1");
            assert_eq!(resp.body, Body::Bye);
            std::thread::sleep(std::time::Duration::from_millis(100));

            // Q spans the network, so neither shard's region is prunable and
            // the dead shard is material: typed upstream error naming it.
            let resp = client
                .call(&query_req("span", &p, &q, 0.5, Aggregate::Max))
                .expect("spanning query");
            match resp.body {
                Body::Upstream { shard, .. } => assert_eq!(shard, 1),
                other => panic!("expected upstream error, got {other:?}"),
            }

            // Candidates wholly inside the live shard still answer, exactly.
            let engine = Engine::new(&g);
            let p0: Vec<u32> = p
                .iter()
                .copied()
                .filter(|&v| parts[0].binary_search(&v).is_ok())
                .collect();
            assert!(!p0.is_empty(), "workload P misses shard 0 entirely");
            let resp = client
                .call(&query_req("live", &p0, &q, 0.5, Aggregate::Max))
                .expect("live-shard query");
            let got = wire_answer(&resp.body).map(|(ps, d, s, _)| (ps, d, s));
            let want = engine
                .query(&p0, &q, 0.5, Aggregate::Max)
                .expect("valid")
                .map(|a| (a.p_star, a.dist, a.subset));
            assert_eq!(got, want, "live shard must still answer exactly");

            // Deployment-wide observability fans to every shard, so a dead
            // shard turns health and metrics into the same typed error —
            // that is how an operator notices which shard is down.
            for op in [Op::Health, Op::Metrics] {
                let resp = client.call(&Request { id: None, op }).expect("probe");
                match resp.body {
                    Body::Upstream { shard, .. } => assert_eq!(shard, 1),
                    other => panic!("expected upstream error from probe, got {other:?}"),
                }
            }
        },
    );
}

/// A random connected graph: spanning tree + extra random edges, weights
/// dominating the Euclidean floor (the same shape `tests/properties.rs`
/// uses, so the pruning scale is honest).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (6usize..24, 0usize..16, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node((next() % 1000) as f64, (next() % 1000) as f64);
        }
        let euclid = |b: &GraphBuilder, u: u32, v: u32| {
            let (ux, uy) = b.coord_of(u);
            let (vx, vy) = b.coord_of(v);
            ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt()
        };
        for v in 1..n as u32 {
            let u = (next() % v as u64) as u32;
            let w = euclid(&b, u, v).ceil() as u32 + (next() % 50) as u32;
            b.add_edge(u, v, w.max(1));
        }
        for _ in 0..extra {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u != v {
                let w = euclid(&b, u, v).ceil() as u32 + (next() % 50) as u32;
                b.add_edge(u, v, w.max(1));
            }
        }
        b.build()
    })
}

/// Graph, deduped P and Q, phi, and a *random* partition into 2–4 shards
/// (possibly unbalanced, possibly with empty shards) — nothing about the
/// router may depend on the partition being geometric or balanced.
type PartitionedInstance = (Graph, Vec<u32>, Vec<u32>, f64, Vec<Vec<u32>>);

fn arb_partitioned_instance() -> impl Strategy<Value = PartitionedInstance> {
    (arb_graph(), any::<u64>(), 1usize..101, 2usize..5).prop_map(|(g, seed, phi_pct, shards)| {
        let n = g.num_nodes();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut pick = |count: usize| -> Vec<u32> {
            let mut v: Vec<u32> = (0..count).map(|_| (next() % n as u64) as u32).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let p = pick(1 + (seed % 7) as usize);
        let q = pick(1 + (seed / 7 % 7) as usize);
        let mut parts: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for v in 0..n as u32 {
            parts[(next() % shards as u64) as usize].push(v);
        }
        (g, p, q, (phi_pct as f64) / 100.0, parts)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Over random graphs and random (even adversarial) partitions, the
    /// routed answer matches the single engine: bit-for-bit when the
    /// optimum is unique, and on the optimal distance always (ties may
    /// legitimately pick a different witness across P scan orders).
    #[test]
    fn random_partition_matches_single_engine(
        (g, p, q, phi, parts) in arb_partitioned_instance()
    ) {
        let single = Engine::new(&g);
        let outcome = with_deployment(&g, &parts, || Engine::new(&g), |router_addr, _| {
            let mut client = Client::connect(router_addr).expect("connect");
            let mut checks = Vec::new();
            for agg in [Aggregate::Max, Aggregate::Sum] {
                let resp = client
                    .call(&query_req("pp", &p, &q, phi, agg))
                    .expect("query");
                checks.push((agg, wire_answer(&resp.body)));
            }
            checks
        });
        let k = flex_k(phi, q.len());
        for (agg, got) in outcome {
            let want = single.query(&p, &q, phi, agg).expect("valid query");
            let got = got.map(|(ps, d, s, _)| (ps, d, s));
            let want = want.map(|a| (a.p_star, a.dist, a.subset));
            if optimum_is_unique(&g, &p, &q, k, agg) {
                prop_assert_eq!(got, want, "unique-optimum divergence ({})", agg);
            } else {
                prop_assert_eq!(
                    got.as_ref().map(|(_, d, _)| *d),
                    want.as_ref().map(|(_, d, _)| *d),
                    "optimal distance divergence on a tie ({})",
                    agg
                );
            }
        }
    }

    /// Pruning soundness: for every shard with candidates, the router's
    /// bound `flex_k(phi,|Q|)·scale·mdist(b_Q, region)` (per-term for MAX)
    /// never exceeds the true optimum restricted to that shard — so a
    /// pruned shard can never hold the winner. Pure map + engine, no
    /// sockets.
    #[test]
    fn shard_bound_never_exceeds_shard_optimum(
        (g, p, q, phi, parts) in arb_partitioned_instance()
    ) {
        let map = ShardMap::build(&g, &parts);
        let engine = Engine::new(&g);
        let mut rect = [f64::INFINITY, f64::INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY];
        for &qv in &q {
            let c = g.coord(qv);
            rect[0] = rect[0].min(c.x);
            rect[1] = rect[1].min(c.y);
            rect[2] = rect[2].max(c.x);
            rect[3] = rect[3].max(c.y);
        }
        let k = flex_k(phi, q.len()) as u64;
        for s in 0..map.num_shards() {
            let p_s: Vec<u32> = p.iter().copied().filter(|&v| map.owner(v) == s).collect();
            if p_s.is_empty() {
                continue;
            }
            let per_term = map.mindist_lower_bound(s, rect);
            if let Some(ans) = engine.query(&p_s, &q, phi, Aggregate::Max).expect("valid") {
                prop_assert!(
                    per_term <= ans.dist,
                    "MAX bound {} exceeds shard optimum {}", per_term, ans.dist
                );
            }
            let sum_bound = per_term.saturating_mul(k);
            if let Some(ans) = engine.query(&p_s, &q, phi, Aggregate::Sum).expect("valid") {
                prop_assert!(
                    sum_bound <= ans.dist,
                    "SUM bound {} exceeds shard optimum {}", sum_bound, ans.dist
                );
            }
        }
    }
}
