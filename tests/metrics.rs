//! Observability-layer integration tests.
//!
//! Two invariants protect the tentpole design:
//! * **Transparency** — `Engine::query_traced` returns answers
//!   bit-identical to `Engine::query`; tracing observes the search, it
//!   never steers it.
//! * **Sanity of the counters** — the numbers move the way the algorithms
//!   say they should: INE settles no *more* nodes when `Q` grows at fixed
//!   `k` (more targets end the expansion sooner), and every strategy
//!   reports non-zero work on non-trivial queries.

use fannr::fann::engine::{BatchQuery, Engine};
use fannr::fann::gphi::ine::InePhi;
use fannr::fann::gphi::GPhi;
use fannr::fann::metrics::StatsSink;
use fannr::fann::Aggregate;
use fannr::roadnet::{Graph, GraphBuilder};
use proptest::prelude::*;

/// A random connected graph: spanning tree + `extra` random edges, with
/// weights dominating Euclidean lengths (admissible for the IER bounds).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..28, 0usize..20, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            let x = (next() % 1000) as f64;
            let y = (next() % 1000) as f64;
            b.add_node(x, y);
        }
        let euclid = |b: &GraphBuilder, u: u32, v: u32| {
            let (ux, uy) = b.coord_of(u);
            let (vx, vy) = b.coord_of(v);
            ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt()
        };
        for v in 1..n as u32 {
            let u = (next() % v as u64) as u32;
            let w = euclid(&b, u, v).ceil() as u32 + (next() % 50) as u32;
            b.add_edge(u, v, w.max(1));
        }
        for _ in 0..extra {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u != v {
                let w = euclid(&b, u, v).ceil() as u32 + (next() % 50) as u32;
                b.add_edge(u, v, w.max(1));
            }
        }
        b.build()
    })
}

/// Graph plus non-empty P, Q subsets and a phi in (0, 1].
fn arb_instance() -> impl Strategy<Value = (Graph, Vec<u32>, Vec<u32>, f64)> {
    (arb_graph(), any::<u64>(), 1usize..101).prop_map(|(g, seed, phi_pct)| {
        let n = g.num_nodes();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        fn pick(next: &mut dyn FnMut() -> u64, n: usize, count: usize) -> Vec<u32> {
            let mut v: Vec<u32> = (0..count).map(|_| (next() % n as u64) as u32).collect();
            v.sort_unstable();
            v.dedup();
            v
        }
        let pc = 1 + (next() % 8) as usize;
        let p = pick(&mut next, n, pc);
        let qc = 1 + (next() % 8) as usize;
        let q = pick(&mut next, n, qc);
        (g, p, q, (phi_pct as f64) / 100.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `query_traced` is observationally identical to `query` — same
    /// Option-ness, same `p*`, `d*`, and subset — for every strategy the
    /// engine can select, and it records work whenever it answers.
    #[test]
    fn traced_equals_untraced((g, p, q, phi) in arb_instance()) {
        let engines = [
            Engine::new(&g),
            Engine::new(&g).allow_approx_sum(true),
            Engine::new(&g).with_labels(),
        ];
        for engine in &engines {
            for agg in [Aggregate::Sum, Aggregate::Max] {
                let plain = engine.query(&p, &q, phi, agg).expect("valid instance");
                let (traced, stats) =
                    engine.query_traced(&p, &q, phi, agg).expect("valid instance");
                prop_assert_eq!(
                    &plain, &traced,
                    "strategy {}", engine.strategy_for(agg)
                );
                if plain.is_some() {
                    prop_assert!(
                        !stats.is_empty(),
                        "strategy {} answered without recording work",
                        engine.strategy_for(agg)
                    );
                }
            }
        }
    }

    /// Batch tracing changes nothing either: answers equal the untraced
    /// batch, and the per-strategy query counts add up to the stream.
    #[test]
    fn traced_batch_equals_untraced_batch((g, p, q, phi) in arb_instance()) {
        let engine = Engine::new(&g);
        let stream: Vec<BatchQuery> = [Aggregate::Max, Aggregate::Sum]
            .into_iter()
            .map(|agg| BatchQuery::new(p.clone(), q.clone(), phi, agg))
            .collect();
        for workers in [1usize, 2] {
            let plain = engine.query_batch(&stream, workers);
            let (traced, report) = engine.query_batch_traced(&stream, workers);
            prop_assert_eq!(&plain, &traced);
            prop_assert_eq!(report.total_queries(), stream.len() as u64);
        }
    }
}

/// At fixed subset size `k`, growing `Q` can only *shorten* an INE
/// expansion: the search stops once `k` query points are settled, and a
/// superset of targets is hit no later. So `nodes_settled` is weakly
/// decreasing in `|Q|` — the counter moves the way Algorithm INE says.
#[test]
fn ine_settles_no_more_nodes_as_q_grows() {
    let g = {
        let mut rng = fannr::workload::rng(0xC0FFEE);
        fannr::workload::synth::road_network(800, &mut rng)
    };
    let q_full: Vec<u32> = (0..8)
        .map(|i| (i * 97 + 13) % g.num_nodes() as u32)
        .collect();
    let k = 2usize;
    for p in [0u32, 101, 355, 512] {
        let mut prev = u64::MAX;
        for take in 2..=q_full.len() {
            let q = &q_full[..take];
            let sink = StatsSink::new();
            let ine = InePhi::with_recorder(&g, q, &sink);
            let r = ine.eval(p, k, Aggregate::Sum);
            let settled = sink.snapshot().nodes_settled;
            if r.is_some() {
                assert!(
                    settled <= prev,
                    "p={p}: settled {settled} with |Q|={take} but {prev} with |Q|={}",
                    take - 1
                );
                prev = settled;
            }
        }
    }
}
