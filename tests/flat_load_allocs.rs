//! Zero-copy loading really is zero-copy: heap allocations during a flat
//! v2 load are O(sections) — a small constant per file — independent of
//! how many nodes, labels, or matrix entries the index holds. This is the
//! load-path contract that makes continental cold starts I/O-bound.
//!
//! This file must hold only these tests: it installs a counting global
//! allocator and the counts would be polluted by concurrent tests.

use fannr::bench::throughput::{allocation_count, CountingAlloc};
use fannr::gtree::{GTree, GTreeParams};
use fannr::hublabel::HubLabels;
use fannr::roadnet::Graph;
use std::path::PathBuf;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations performed by `f`, excluding anything before/after.
fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = allocation_count();
    let out = f();
    (allocation_count() - before, out)
}

fn write_index(nodes: usize, tag: &str) -> (PathBuf, Graph) {
    let g = fannr::workload::synth::road_network(nodes, &mut fannr::workload::rng(11));
    let labels = HubLabels::build(&g);
    let tree = GTree::build_with_params(
        &g,
        GTreeParams {
            fanout: 4,
            leaf_cap: 32,
        },
    );
    let dir = std::env::temp_dir().join(format!("fannr-allocs-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    g.write_flat(&dir.join("graph.v2")).unwrap();
    labels.write_flat(&dir.join("labels.v2")).unwrap();
    tree.write_flat(&dir.join("gtree.v2")).unwrap();
    (dir, g)
}

#[test]
fn v2_load_allocations_are_constant_in_index_size() {
    // Two indexes an order of magnitude apart in size.
    let (small_dir, small_g) = write_index(400, "s");
    let (large_dir, large_g) = write_index(4000, "l");
    assert!(large_g.num_nodes() >= 8 * small_g.num_nodes());

    let load_all = |dir: &PathBuf| {
        let g = Graph::read_flat(&dir.join("graph.v2")).unwrap();
        let l = HubLabels::read_flat(&dir.join("labels.v2")).unwrap();
        let t = GTree::read_flat(&dir.join("gtree.v2")).unwrap();
        (g, l, t)
    };

    // Warm up (File/BufReader one-time setup, test-harness noise).
    let _ = load_all(&small_dir);

    let (small_allocs, small_loaded) = allocs_during(|| load_all(&small_dir));
    let (large_allocs, large_loaded) = allocs_during(|| load_all(&large_dir));

    // Loaded indexes are real: spot-check a query structure.
    assert_eq!(small_loaded.0.num_nodes(), small_g.num_nodes());
    assert_eq!(large_loaded.0.num_nodes(), large_g.num_nodes());
    assert!(large_loaded.1.total_label_entries() > small_loaded.1.total_label_entries());
    assert!(large_loaded.2.num_tree_nodes() > small_loaded.2.num_tree_nodes());

    // O(sections): a generous fixed budget per load (3 files, ~20
    // sections total, plus one buffer each), and — the real contract —
    // no growth with index size.
    assert!(
        small_allocs <= 256,
        "small v2 load made {small_allocs} allocations"
    );
    assert!(
        large_allocs <= small_allocs + 32,
        "v2 load allocations scale with index size: {small_allocs} -> {large_allocs}"
    );

    // Contrast: the v1 element-wise decode allocates per node/label.
    let v1_labels = small_loaded.1.to_bytes();
    let (v1_allocs, decoded) = allocs_during(|| HubLabels::from_bytes(&v1_labels).unwrap());
    assert!(decoded == small_loaded.1);
    assert!(
        v1_allocs > large_allocs,
        "v1 decode ({v1_allocs} allocs) should dwarf v2 load ({large_allocs})"
    );

    std::fs::remove_dir_all(&small_dir).ok();
    std::fs::remove_dir_all(&large_dir).ok();
}
