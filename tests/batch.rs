//! Batch-layer integration tests: the recycled-scratch query path must be
//! observationally identical to the per-query path.
//!
//! Three angles:
//! * cross-validation — [`Engine::query_batch`] returns bit-identical
//!   answers to a sequential [`Engine::query`] loop for every strategy,
//!   aggregate, and phi;
//! * scratch-reuse soundness (property) — one long-lived backend answering
//!   `q_1..q_n` sequentially equals `n` fresh backends;
//! * concurrency — worker counts 1/2/8 agree, and degenerate streams
//!   (empty, singleton) neither deadlock nor misbehave.

use fannr::fann::engine::{BatchQuery, Engine};
use fannr::fann::gphi::ine::InePhi;
use fannr::fann::gphi::oracle::{AStarOracle, DijkstraOracle, DistanceOracle};
use fannr::fann::gphi::{GPhi, ReusableGPhi};
use fannr::fann::Aggregate;
use fannr::roadnet::dijkstra::dijkstra_pair;
use fannr::roadnet::{Graph, NodeId};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::Rng;

/// A connected-ish synthetic road network plus a deterministic mixed query
/// stream over it (both aggregates, several phi values, varying P/Q).
fn workload(seed: u64, nodes: usize, queries: usize) -> (Graph, Vec<BatchQuery>) {
    let mut rng = fannr::workload::rng(seed);
    let g = fannr::workload::synth::road_network(nodes, &mut rng);
    let all_p = fannr::workload::points::uniform_data_points(&g, 0.1, &mut rng);
    let stream = (0..queries)
        .map(|i| {
            let mut p = all_p.clone();
            p.shuffle(&mut rng);
            p.truncate(4 + i % 5);
            let q = fannr::workload::points::uniform_query_points(&g, 3 + i % 4, 0.5, &mut rng);
            let phi = [0.25, 0.5, 0.75, 1.0][i % 4];
            let agg = if i % 2 == 0 {
                Aggregate::Max
            } else {
                Aggregate::Sum
            };
            BatchQuery::new(p, q, phi, agg)
        })
        .collect();
    (g, stream)
}

/// `query_batch` must be indistinguishable from a `query` loop — same
/// `d*`, same `p*`, same subset — under every strategy the engine selects
/// (Exact-max, R-List/INE, APX-sum/INE, IER-kNN/labels).
#[test]
fn batch_cross_validates_sequential_for_every_strategy() {
    let (g, stream) = workload(11, 500, 24);
    let engines = [
        Engine::new(&g),
        Engine::new(&g).allow_approx_sum(true),
        Engine::new(&g).with_labels(),
    ];
    for engine in &engines {
        let sequential: Vec<_> = stream
            .iter()
            .map(|b| engine.query(&b.p, &b.q, b.phi, b.agg).unwrap())
            .collect();
        for workers in [1usize, 2, 8] {
            let batch = engine.query_batch(&stream, workers);
            assert_eq!(batch.len(), sequential.len());
            for (i, (got, want)) in batch.iter().zip(&sequential).enumerate() {
                let got = got.as_ref().unwrap();
                assert_eq!(
                    got,
                    want,
                    "query {i} diverged (workers={workers}, labels={}, agg={})",
                    engine.has_labels(),
                    stream[i].agg,
                );
            }
        }
    }
}

/// Worker counts must not change answers, only wall-clock: all of 1, 2,
/// and 8 workers produce the same result vector.
#[test]
fn worker_counts_agree() {
    let (g, stream) = workload(12, 400, 30);
    let engine = Engine::new(&g);
    let baseline = engine.query_batch(&stream, 1);
    for workers in [2usize, 8] {
        assert_eq!(
            engine.query_batch(&stream, workers),
            baseline,
            "workers={workers}"
        );
    }
}

/// Degenerate streams: empty input returns an empty vector and a
/// single-query stream works for every worker count (more workers than
/// queries must clamp, not hang).
#[test]
fn degenerate_streams_terminate() {
    let (g, stream) = workload(13, 300, 1);
    let engine = Engine::new(&g);
    for workers in [0usize, 1, 2, 8] {
        assert!(engine.query_batch(&[], workers).is_empty());
        let got = engine.query_batch(&stream, workers);
        assert_eq!(got.len(), 1);
        let want = engine
            .query(&stream[0].p, &stream[0].q, stream[0].phi, stream[0].agg)
            .unwrap();
        assert_eq!(got[0].as_ref().unwrap(), &want, "workers={workers}");
    }
}

/// Invalid queries fail individually without poisoning the rest of the
/// stream or the worker's recycled state.
#[test]
fn per_query_errors_leave_state_clean() {
    let (g, mut stream) = workload(14, 300, 8);
    let bad = BatchQuery::new(vec![u32::MAX], vec![0], 0.5, Aggregate::Max);
    stream.insert(3, bad);
    let engine = Engine::new(&g);
    for workers in [1usize, 4] {
        let got = engine.query_batch(&stream, workers);
        for (i, r) in got.iter().enumerate() {
            if i == 3 {
                assert!(r.is_err(), "bad query must error");
            } else {
                let want = engine
                    .query(&stream[i].p, &stream[i].q, stream[i].phi, stream[i].agg)
                    .unwrap();
                assert_eq!(r.as_ref().unwrap(), &want, "query {i} after error");
            }
        }
    }
}

/// Duplicate ids in `P`/`Q` are set semantics everywhere: a dup-laden
/// stream answers exactly like its deduplicated twin (first occurrence
/// kept), sequentially and batched, with and without labels. This pins
/// the contract documented on [`fannr::fann::FannQuery`] — `phi` applies
/// to the *set* cardinality of `Q`, never the multiset length.
#[test]
fn duplicate_ids_cross_validate_against_deduped_stream() {
    let (g, stream) = workload(15, 400, 12);
    // Duplicate some of P and Q in every query (keeping first-occurrence
    // order so the deduped twin is exactly the original).
    let dup_stream: Vec<BatchQuery> = stream
        .iter()
        .map(|b| {
            let mut p = b.p.clone();
            p.insert(1, b.p[0]);
            p.push(*b.p.last().expect("non-empty P"));
            let mut q = b.q.clone();
            q.extend_from_slice(&b.q);
            BatchQuery::new(p, q, b.phi, b.agg)
        })
        .collect();
    for engine in [Engine::new(&g), Engine::new(&g).with_labels()] {
        for (i, (dup, clean)) in dup_stream.iter().zip(&stream).enumerate() {
            let got = engine.query(&dup.p, &dup.q, dup.phi, dup.agg).unwrap();
            let want = engine
                .query(&clean.p, &clean.q, clean.phi, clean.agg)
                .unwrap();
            assert_eq!(got, want, "query {i}, labels={}", engine.has_labels());
        }
        for workers in [1usize, 4] {
            let got = engine.query_batch(&dup_stream, workers);
            let want = engine.query_batch(&stream, workers);
            assert_eq!(
                got,
                want,
                "workers={workers}, labels={}",
                engine.has_labels()
            );
        }
    }
}

/// Draw a small connected network and a sequence of eval requests on it.
fn arb_eval_sequence() -> impl Strategy<Value = (Graph, Vec<(Vec<NodeId>, NodeId, usize)>)> {
    (any::<u64>(), 20usize..80, 2usize..10).prop_map(|(seed, nodes, evals)| {
        let mut rng = fannr::workload::rng(seed);
        let g = fannr::workload::synth::road_network(nodes, &mut rng);
        let n = g.num_nodes() as u32;
        let seq = (0..evals)
            .map(|_| {
                let qlen = rng.gen_range(1usize..6);
                let mut q: Vec<NodeId> = (0..qlen).map(|_| rng.gen_range(0..n)).collect();
                q.sort_unstable();
                q.dedup();
                let p = rng.gen_range(0..n);
                let k = rng.gen_range(1usize..=q.len());
                (q, p, k)
            })
            .collect();
        (g, seq)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scratch-reuse soundness: one long-lived INE backend rebound across
    /// an arbitrary eval sequence answers exactly like a fresh backend
    /// built for each request (same distance, same subset).
    #[test]
    fn reused_ine_backend_equals_fresh_backends((g, seq) in arb_eval_sequence()) {
        let mut reused = InePhi::new(&g, &seq[0].0);
        for (q, p, k) in &seq {
            reused.rebind(q);
            let fresh = InePhi::new(&g, q);
            for agg in [Aggregate::Max, Aggregate::Sum] {
                let a = reused.eval(*p, *k, agg);
                let b = fresh.eval(*p, *k, agg);
                match (a, b) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(a.dist, b.dist);
                        prop_assert_eq!(a.subset_nodes(), b.subset_nodes());
                    }
                    (a, b) => panic!("reachability diverged: {a:?} vs {b:?}"),
                }
            }
        }
    }

    /// Oracle scratch reuse: one long-lived Dijkstra/A* oracle answering an
    /// arbitrary (s, t) sequence equals the textbook per-pair search.
    #[test]
    fn reused_oracles_equal_fresh_searches((g, seq) in arb_eval_sequence()) {
        let dij = DijkstraOracle::new(&g);
        let ast = AStarOracle::new(&g);
        for (q, p, _) in &seq {
            for &t in q {
                let want = dijkstra_pair(&g, *p, t);
                prop_assert_eq!(dij.dist(*p, t), want);
                prop_assert_eq!(ast.dist(*p, t), want);
            }
        }
    }
}
