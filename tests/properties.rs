//! Property-based tests (proptest) over random road networks.
//!
//! The graph strategy draws a random spanning tree plus extra edges, with
//! coordinates on a plane and weights that dominate Euclidean lengths
//! (so every Euclidean-bound-based component is exercised honestly).

use fannr::fann::algo::ier::build_p_rtree;
use fannr::fann::algo::topk::{exact_max_topk, gd_topk, ier_topk, rlist_topk};
use fannr::fann::algo::{apx_sum, brute_force, exact_max, gd, ier_knn, r_list};
use fannr::fann::gphi::ine::InePhi;
use fannr::fann::gphi::GPhi;
use fannr::fann::{Aggregate, FannQuery};
use fannr::gtree::{GTree, GTreeParams, Occurrence};
use fannr::hublabel::HubLabels;
use fannr::roadnet::dijkstra::{dijkstra_all, dijkstra_pair};
use fannr::roadnet::{astar_pair, bidirectional_pair, Graph, GraphBuilder, LowerBound, INF};
use proptest::prelude::*;

/// A random connected graph: spanning tree + `extra` random edges.
/// Weights are `ceil(euclid) + jitter`, hence admissible for A*/IER.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..28, 0usize..20, any::<u64>()).prop_map(|(n, extra, seed)| {
        // Simple xorshift so the strategy stays pure.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            let x = (next() % 1000) as f64;
            let y = (next() % 1000) as f64;
            b.add_node(x, y);
        }
        let euclid = |b: &GraphBuilder, u: u32, v: u32| {
            let (ux, uy) = b.coord_of(u);
            let (vx, vy) = b.coord_of(v);
            ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt()
        };
        for v in 1..n as u32 {
            let u = (next() % v as u64) as u32;
            let w = euclid(&b, u, v).ceil() as u32 + (next() % 50) as u32;
            b.add_edge(u, v, w.max(1));
        }
        for _ in 0..extra {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u != v {
                let w = euclid(&b, u, v).ceil() as u32 + (next() % 50) as u32;
                b.add_edge(u, v, w.max(1));
            }
        }
        b.build()
    })
}

/// Graph plus non-empty P, Q subsets and a phi.
fn arb_instance() -> impl Strategy<Value = (Graph, Vec<u32>, Vec<u32>, f64)> {
    (arb_graph(), any::<u64>(), 1usize..100).prop_map(|(g, seed, phi_pct)| {
        let n = g.num_nodes();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        fn pick(next: &mut dyn FnMut() -> u64, n: usize, count: usize) -> Vec<u32> {
            let mut v: Vec<u32> = (0..count).map(|_| (next() % n as u64) as u32).collect();
            v.sort_unstable();
            v.dedup();
            v
        }
        let pc = 1 + (next() % 8) as usize;
        let p = pick(&mut next, n, pc);
        let qc = 1 + (next() % 8) as usize;
        let q = pick(&mut next, n, qc);
        (g, p, q, (phi_pct as f64) / 100.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All exact point-to-point oracles agree everywhere.
    #[test]
    fn oracles_agree(g in arb_graph()) {
        let lb = LowerBound::for_graph(&g);
        let hl = HubLabels::build(&g);
        let gt = GTree::build_with_params(&g, GTreeParams { fanout: 2, leaf_cap: 4 });
        for s in 0..g.num_nodes() as u32 {
            let truth = dijkstra_all(&g, s);
            for t in 0..g.num_nodes() as u32 {
                let want = (truth[t as usize] != INF).then_some(truth[t as usize]);
                prop_assert_eq!(astar_pair(&g, &lb, s, t), want);
                prop_assert_eq!(bidirectional_pair(&g, s, t), want);
                prop_assert_eq!(hl.distance(s, t), want);
                prop_assert_eq!(gt.dist(&g, s, t), want);
            }
        }
    }

    /// Network distance satisfies the triangle inequality and symmetry.
    #[test]
    fn metric_axioms(g in arb_graph()) {
        let n = g.num_nodes() as u32;
        let d: Vec<Vec<u64>> = (0..n).map(|s| dijkstra_all(&g, s)).collect();
        for a in 0..n as usize {
            prop_assert_eq!(d[a][a], 0);
            for b in 0..n as usize {
                prop_assert_eq!(d[a][b], d[b][a], "symmetry");
                for c in 0..n as usize {
                    if d[a][b] != INF && d[b][c] != INF {
                        prop_assert!(d[a][c] <= d[a][b] + d[b][c], "triangle");
                    }
                }
            }
        }
    }

    /// The Euclidean lower bound never exceeds the network distance.
    #[test]
    fn lower_bound_admissible(g in arb_graph()) {
        let lb = LowerBound::for_graph(&g);
        for s in 0..g.num_nodes() as u32 {
            let d = dijkstra_all(&g, s);
            for t in 0..g.num_nodes() as u32 {
                if d[t as usize] != INF {
                    prop_assert!(lb.bound(&g, s, t) <= d[t as usize]);
                }
            }
        }
    }

    /// Every exact FANN_R algorithm matches brute force, for both
    /// aggregates, on arbitrary instances (including disconnected ones).
    #[test]
    fn fann_algorithms_match_brute_force((g, p, q, phi) in arb_instance()) {
        let rtree = build_p_rtree(&g, &p);
        for agg in [Aggregate::Sum, Aggregate::Max] {
            let query = FannQuery::new(&p, &q, phi, agg);
            let truth = brute_force(&g, &query);
            let ine = InePhi::new(&g, &q);
            let dist = |a: Option<fannr::fann::FannAnswer>| a.map(|x| x.dist);
            prop_assert_eq!(dist(gd(&query, &ine)), truth.as_ref().map(|t| t.dist));
            prop_assert_eq!(
                dist(r_list(&g, &query, &ine)),
                truth.as_ref().map(|t| t.dist)
            );
            prop_assert_eq!(
                dist(ier_knn(&g, &query, &rtree, &ine)),
                truth.as_ref().map(|t| t.dist)
            );
            if agg == Aggregate::Max {
                prop_assert_eq!(
                    dist(exact_max(&g, &query)),
                    truth.as_ref().map(|t| t.dist)
                );
            }
        }
    }

    /// APX-sum respects Theorem 1 (ratio <= 3) whenever both it and the
    /// optimum exist, and never beats the optimum.
    #[test]
    fn apx_sum_three_approx((g, p, q, phi) in arb_instance()) {
        let query = FannQuery::new(&p, &q, phi, Aggregate::Sum);
        let ine = InePhi::new(&g, &q);
        if let Some(truth) = brute_force(&g, &query) {
            if let Some(a) = apx_sum(&g, &query, &ine) {
                prop_assert!(a.dist >= truth.dist);
                prop_assert!(a.dist <= 3 * truth.dist.max(1));
            }
        }
    }

    /// d* is monotone non-decreasing in phi (more required neighbors can
    /// only push the aggregate up).
    #[test]
    fn monotone_in_phi((g, p, q, _phi) in arb_instance()) {
        for agg in [Aggregate::Sum, Aggregate::Max] {
            let mut prev: Option<u64> = None;
            for phi in [0.2, 0.4, 0.6, 0.8, 1.0] {
                let query = FannQuery::new(&p, &q, phi, agg);
                match brute_force(&g, &query) {
                    Some(a) => {
                        if let Some(pv) = prev {
                            prop_assert!(a.dist >= pv, "d* must grow with phi");
                        }
                        prev = Some(a.dist);
                    }
                    None => {
                        // Once infeasible, larger phi stays infeasible.
                        let later = FannQuery::new(&p, &q, 1.0, agg);
                        prop_assert!(brute_force(&g, &later).is_none());
                        break;
                    }
                }
            }
        }
    }

    /// The answer is invariant under permutations of P and Q.
    #[test]
    fn permutation_invariant((g, p, q, phi) in arb_instance()) {
        let mut p2 = p.clone();
        let mut q2 = q.clone();
        p2.reverse();
        q2.reverse();
        for agg in [Aggregate::Sum, Aggregate::Max] {
            let a = brute_force(&g, &FannQuery::new(&p, &q, phi, agg));
            let b = brute_force(&g, &FannQuery::new(&p2, &q2, phi, agg));
            prop_assert_eq!(a.map(|x| x.dist), b.map(|x| x.dist));
        }
    }

    /// G-tree kNN over arbitrary object sets equals sort-by-Dijkstra.
    #[test]
    fn gtree_knn_matches_naive(g in arb_graph(), seed in any::<u64>()) {
        let n = g.num_nodes();
        let objects: Vec<u32> = (0..n as u32).filter(|v| (seed >> (v % 48)) & 1 == 1).collect();
        prop_assume!(!objects.is_empty());
        let t = GTree::build_with_params(&g, GTreeParams { fanout: 2, leaf_cap: 4 });
        let occ = Occurrence::build(&t, &objects);
        for v in 0..n as u32 {
            let d = dijkstra_all(&g, v);
            let mut want: Vec<u64> = objects
                .iter()
                .map(|&o| d[o as usize])
                .filter(|&x| x != INF)
                .collect();
            want.sort_unstable();
            want.truncate(3);
            let got: Vec<u64> = t.knn(&g, &occ, v, 3).into_iter().map(|(_, d)| d).collect();
            prop_assert_eq!(got, want);
        }
    }

    /// k-FANN_R: all four adaptations return identical distance vectors.
    #[test]
    fn topk_consistent((g, p, q, phi) in arb_instance(), k_out in 1usize..6) {
        let rtree = build_p_rtree(&g, &p);
        let query = FannQuery::new(&p, &q, phi, Aggregate::Max);
        let ine = InePhi::new(&g, &q);
        let d = |v: Vec<(u32, u64)>| -> Vec<u64> { v.into_iter().map(|(_, d)| d).collect() };
        let a = d(gd_topk(&query, &ine, k_out));
        let b = d(rlist_topk(&g, &query, &ine, k_out));
        let c = d(ier_topk(&g, &query, &rtree, &ine, k_out));
        let e = d(exact_max_topk(&g, &query, k_out));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        prop_assert_eq!(&a, &e);
    }

    /// g_phi result is internally consistent: subset size k, distances
    /// sorted, aggregate matches the subset.
    #[test]
    fn gphi_result_consistent((g, _p, q, phi) in arb_instance()) {
        let ine = InePhi::new(&g, &q);
        let k = ((phi * q.len() as f64).ceil() as usize).clamp(1, q.len());
        for v in 0..g.num_nodes() as u32 {
            for agg in [Aggregate::Sum, Aggregate::Max] {
                if let Some(r) = ine.eval(v, k, agg) {
                    prop_assert_eq!(r.subset.len(), k);
                    prop_assert!(r.subset.windows(2).all(|w| w[0].1 <= w[1].1));
                    let ds: Vec<u64> = r.subset.iter().map(|&(_, d)| d).collect();
                    prop_assert_eq!(r.dist, agg.of_sorted(&ds));
                    // Every subset member is actually reachable at the
                    // claimed distance.
                    let truth = dijkstra_all(&g, v);
                    for &(node, dist) in &r.subset {
                        prop_assert_eq!(truth[node as usize], dist);
                    }
                }
            }
        }
    }

    /// Pairwise Dijkstra with early exit equals full Dijkstra.
    #[test]
    fn pair_equals_all(g in arb_graph()) {
        for s in 0..g.num_nodes() as u32 {
            let all = dijkstra_all(&g, s);
            for t in 0..g.num_nodes() as u32 {
                let want = (all[t as usize] != INF).then_some(all[t as usize]);
                prop_assert_eq!(dijkstra_pair(&g, s, t), want);
            }
        }
    }
}

/// Graphs whose weights are *uncorrelated* with geometry (admissible scale
/// far below 1): the Euclidean machinery (A*, IER, IER²) must stay exact.
fn arb_skewed_graph() -> impl Strategy<Value = Graph> {
    (4usize..22, 0usize..18, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            let x = (next() % 10_000) as f64;
            let y = (next() % 10_000) as f64;
            b.add_node(x, y);
        }
        for v in 1..n as u32 {
            let u = (next() % v as u64) as u32;
            b.add_edge(u, v, 1 + (next() % 9) as u32); // tiny weights, huge euclid
        }
        for _ in 0..extra {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u != v {
                b.add_edge(u, v, 1 + (next() % 9) as u32);
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A* stays exact when the admissible scale is tiny.
    #[test]
    fn astar_exact_on_skewed_weights(g in arb_skewed_graph()) {
        let lb = fannr::roadnet::LowerBound::for_graph(&g);
        prop_assert!(lb.scale() < 1.0 || g.num_edges() == 0);
        for s in 0..g.num_nodes() as u32 {
            let truth = dijkstra_all(&g, s);
            for t in 0..g.num_nodes() as u32 {
                let want = (truth[t as usize] != INF).then_some(truth[t as usize]);
                prop_assert_eq!(fannr::roadnet::astar_pair(&g, &lb, s, t), want);
            }
        }
    }

    /// IER-kNN and the IER² backend stay exact under a tiny scale — the
    /// Euclidean bounds shrink towards zero but never over-prune.
    #[test]
    fn ier_exact_on_skewed_weights(g in arb_skewed_graph(), seed in any::<u64>()) {
        let n = g.num_nodes() as u32;
        let p: Vec<u32> = (0..n).filter(|v| (seed >> (v % 50)) & 1 == 1).collect();
        let q: Vec<u32> = (0..n).filter(|v| (seed >> ((v + 17) % 50)) & 1 == 0).collect();
        prop_assume!(!p.is_empty() && !q.is_empty());
        let rtree = build_p_rtree(&g, &p);
        for agg in [Aggregate::Sum, Aggregate::Max] {
            let query = FannQuery::new(&p, &q, 0.5, agg);
            let truth = brute_force(&g, &query);
            let ine = InePhi::new(&g, &q);
            let got = ier_knn(&g, &query, &rtree, &ine);
            prop_assert_eq!(got.map(|a| a.dist), truth.as_ref().map(|t| t.dist));
            // IER² over Q with the A* oracle.
            let ier2 = fannr::fann::gphi::ier2::IerPhi::new(
                &g,
                fannr::fann::gphi::oracle::AStarOracle::new(&g),
                &q,
            );
            let got2 = gd(&query, &ier2);
            prop_assert_eq!(got2.map(|a| a.dist), truth.map(|t| t.dist));
        }
    }
}
