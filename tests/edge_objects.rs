//! End-to-end test of the §II-A edge-object reduction: objects that lie
//! on edges participate in FANN_R queries through graph augmentation
//! (`roadnet::embed`), exactly as the paper's Fig. 1 places q1 and q2 on
//! the edges (p2, p3) and (p3, p6).

use fannr::fann::algo::{brute_force, exact_max};
use fannr::fann::{Aggregate, FannQuery};
use fannr::roadnet::{embed_edge_points, EdgePoint, NodeId};

#[test]
fn edge_located_query_objects() {
    let graph = fannr::workload::synth::road_network(800, &mut fannr::workload::rng(31));
    // Take some existing edges and drop query objects onto their middles.
    let edges: Vec<(NodeId, NodeId, u32)> =
        graph.edges().filter(|&(_, _, w)| w >= 4).take(6).collect();
    assert!(edges.len() >= 4, "generator produced too few heavy edges");
    let points: Vec<EdgePoint> = edges
        .iter()
        .map(|&(u, v, w)| EdgePoint {
            u,
            v,
            offset: w / 2,
        })
        .collect();
    let (aug, q_on_edges) = embed_edge_points(&graph, &points).unwrap();

    // P stays on original vertices; Q are the edge-located objects.
    let mut rng = fannr::workload::rng(32);
    let p = fannr::workload::points::uniform_data_points(&graph, 0.05, &mut rng);
    let query = FannQuery::new(&p, &q_on_edges, 0.5, Aggregate::Max);
    let truth = brute_force(&aug, &query).unwrap();
    let got = exact_max(&aug, &query).unwrap();
    assert_eq!(got.dist, truth.dist);
    // The winner is an original vertex, and original ids are preserved.
    assert!((got.p_star as usize) < graph.num_nodes());
}

#[test]
fn edge_located_data_objects() {
    // Candidate sites on edge midpoints (e.g. plots along a road).
    let graph = fannr::workload::synth::road_network(600, &mut fannr::workload::rng(33));
    let edges: Vec<(NodeId, NodeId, u32)> =
        graph.edges().filter(|&(_, _, w)| w >= 4).take(8).collect();
    let points: Vec<EdgePoint> = edges
        .iter()
        .map(|&(u, v, w)| EdgePoint {
            u,
            v,
            offset: w / 2,
        })
        .collect();
    let (aug, p_on_edges) = embed_edge_points(&graph, &points).unwrap();
    let mut rng = fannr::workload::rng(34);
    let q = fannr::workload::points::uniform_query_points(&aug, 10, 0.5, &mut rng);
    let query = FannQuery::new(&p_on_edges, &q, 0.6, Aggregate::Max);
    let truth = brute_force(&aug, &query).unwrap();
    let got = exact_max(&aug, &query).unwrap();
    assert_eq!(got.dist, truth.dist);
    assert!(p_on_edges.contains(&got.p_star));
}
