//! Reproducibility: fixed seeds must give byte-identical workloads and
//! identical answers — the property the whole benchmark harness rests on.

use fannr::fann::algo::exact_max;
use fannr::fann::{Aggregate, FannQuery};

fn run_once(seed: u64) -> (usize, usize, u32, u64) {
    let mut rng = fannr::workload::rng(seed);
    let g = fannr::workload::synth::road_network(1500, &mut rng);
    let p = fannr::workload::points::uniform_data_points(&g, 0.02, &mut rng);
    let q = fannr::workload::points::clustered_query_points(&g, 16, 0.4, 2, &mut rng);
    let query = FannQuery::new(&p, &q, 0.5, Aggregate::Max);
    let a = exact_max(&g, &query).unwrap();
    (p.len(), q.len(), a.p_star, a.dist)
}

#[test]
fn identical_seeds_identical_answers() {
    assert_eq!(run_once(123), run_once(123));
    assert_eq!(run_once(7), run_once(7));
}

#[test]
fn different_seeds_differ() {
    // Not a hard guarantee, but with 1500 nodes a collision across all
    // four fields would indicate broken seeding.
    assert_ne!(run_once(1), run_once(2));
}

#[test]
fn dataset_registry_is_deterministic() {
    let spec = fannr::workload::datasets::by_name("DE").unwrap();
    let a = spec.synthesize_scaled(0.3);
    let b = spec.synthesize_scaled(0.3);
    assert_eq!(a.num_nodes(), b.num_nodes());
    assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
}
