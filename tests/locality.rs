//! Query-locality layer coherence: the epoch-keyed answer cache and the
//! shared multi-source batch expansion must be *invisible* except for
//! speed.
//!
//! The contract under test, property-sampled across graphs, workloads,
//! strategies, and aggregates:
//!
//! * **cache coherence** — under a random interleaving of queries and
//!   admissible weight-update batches, every answer served through the
//!   cache (hit or miss) is bit-identical to a cold-cache engine built
//!   from scratch on the graph at the epoch the query pinned. This must
//!   hold for every strategy, including through the hub-label staleness
//!   window.
//! * **key canonicalization** — permuted and duplicated `P`/`Q` requests
//!   hit the same cache entry and return the same answer.
//! * **shared-expansion equivalence** — [`Engine::query_colocated`]
//!   answers every query in a batch (co-located, duplicated, one-element,
//!   or mixed) bit-identically to independent [`Engine::query`] calls,
//!   across all four strategies, both aggregates, and
//!   phi in {1/|Q|, 0.5, 1}.
//! * **multi-writer churn** — with several writers bumping epochs
//!   concurrently, cached answers remain bit-identical to a cold engine
//!   on the exact pinned epoch's graph. The `stress_` prefix is the CI
//!   filter for the multi-threaded step.

use fannr::fann::engine::{BatchQuery, CacheOutcome, Engine};
use fannr::fann::Aggregate;
use fannr::roadnet::{Graph, GraphBuilder, WeightUpdate};
use proptest::prelude::*;

/// A random connected graph: spanning tree + `extra` random edges
/// (same shape as `tests/properties.rs` / `tests/snapshot.rs`).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..28, 0usize..20, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            let x = (next() % 1000) as f64;
            let y = (next() % 1000) as f64;
            b.add_node(x, y);
        }
        let euclid = |b: &GraphBuilder, u: u32, v: u32| {
            let (ux, uy) = b.coord_of(u);
            let (vx, vy) = b.coord_of(v);
            ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt()
        };
        for v in 1..n as u32 {
            let u = (next() % v as u64) as u32;
            let w = euclid(&b, u, v).ceil() as u32 + (next() % 50) as u32;
            b.add_edge(u, v, w.max(1));
        }
        for _ in 0..extra {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u != v {
                let w = euclid(&b, u, v).ceil() as u32 + (next() % 50) as u32;
                b.add_edge(u, v, w.max(1));
            }
        }
        b.build()
    })
}

/// Graph plus non-empty P, Q and a phi.
fn arb_instance() -> impl Strategy<Value = (Graph, Vec<u32>, Vec<u32>, f64)> {
    (arb_graph(), any::<u64>(), 1usize..100).prop_map(|(g, seed, phi_pct)| {
        let n = g.num_nodes();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        fn pick(next: &mut dyn FnMut() -> u64, n: usize, count: usize) -> Vec<u32> {
            let mut v: Vec<u32> = (0..count).map(|_| (next() % n as u64) as u32).collect();
            v.sort_unstable();
            v.dedup();
            v
        }
        let pc = 1 + (next() % 8) as usize;
        let p = pick(&mut next, n, pc);
        let qc = 1 + (next() % 8) as usize;
        let q = pick(&mut next, n, qc);
        (g, p, q, (phi_pct as f64) / 100.0)
    })
}

/// Undirected edge list `(u, v, w)` of the *seed* graph, `u < v`. Updates
/// never drop below the seed weight, so the admissibility scale proved at
/// snapshot construction always holds.
fn edge_list(g: &Graph) -> Vec<(u32, u32, u32)> {
    let mut es = Vec::new();
    for u in 0..g.num_nodes() as u32 {
        for (v, w) in g.neighbors(u) {
            if u < v {
                es.push((u, v, w));
            }
        }
    }
    es
}

/// The three engine configurations covering all four strategies, each
/// with an attached answer cache.
fn cached_engines(g: &Graph, capacity: usize) -> [Engine; 3] {
    [
        Engine::new(g).with_answer_cache(capacity), // Exact-max / R-List
        Engine::new(g)
            .allow_approx_sum(true)
            .with_answer_cache(capacity), // Exact-max / APX-sum
        Engine::new(g).with_labels().with_answer_cache(capacity), // IER-kNN/PHL
    ]
}

/// Cold-cache mirrors of [`cached_engines`] on an arbitrary graph.
fn cold_engines(g: &Graph) -> [Engine; 3] {
    [
        Engine::new(g),
        Engine::new(g).allow_approx_sum(true),
        Engine::new(g).with_labels(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random interleaving of queries and admissible update batches:
    /// every cached answer is bit-identical to a cold-cache engine built
    /// on the graph at the pinned epoch, for every strategy.
    #[test]
    fn cache_coherent_through_random_interleavings(
        (g, p, q, phi) in arb_instance(),
        script in any::<u64>(),
    ) {
        let edges = edge_list(&g);
        prop_assume!(!edges.is_empty());
        let mut state = script | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (cfg, live) in cached_engines(&g, 64).into_iter().enumerate() {
            // The mirror graph tracks the live engine's published weights;
            // `cold` is rebuilt from scratch after every epoch bump.
            let mut mirror = g.clone();
            let mut cold = cold_engines(&mirror);
            let mut expected_epoch = 0u64;
            for _ in 0..10 {
                match next() % 5 {
                    // Update batch: inflate a seed-chosen edge subset to a
                    // multiple of its *seed* weight (always admissible).
                    0 | 1 => {
                        let factor = 1 + (next() % 4) as u32;
                        let batch: Vec<WeightUpdate> = edges
                            .iter()
                            .filter(|_| next() % 3 == 0)
                            .map(|&(u, v, w)| WeightUpdate {
                                u,
                                v,
                                w: w.saturating_mul(factor),
                            })
                            .collect();
                        if batch.is_empty() {
                            continue;
                        }
                        let epoch = live.apply_updates(&batch).expect("admissible");
                        expected_epoch += 1;
                        prop_assert_eq!(epoch, expected_epoch);
                        let patches: Vec<_> =
                            batch.iter().map(|u| (u.u, u.v, u.w)).collect();
                        mirror = mirror.with_patched_weights(&patches).expect("edges exist");
                        cold = cold_engines(&mirror);
                    }
                    // Query: sometimes a fresh workload point-set variant,
                    // sometimes a repeat (so hits actually occur).
                    _ => {
                        let (qp, qq, qphi, agg) = match next() % 3 {
                            0 => (p.clone(), q.clone(), phi, Aggregate::Max),
                            1 => (p.clone(), q.clone(), phi, Aggregate::Sum),
                            _ => {
                                let alt_phi = [0.25, 0.5, 1.0][(next() % 3) as usize];
                                let agg =
                                    if next() % 2 == 0 { Aggregate::Max } else { Aggregate::Sum };
                                (p.clone(), q.clone(), alt_phi, agg)
                            }
                        };
                        let (answer, _outcome, epoch) = live
                            .query_cached(&qp, &qq, qphi, agg)
                            .expect("valid instance");
                        prop_assert_eq!(epoch, expected_epoch, "single writer: pinned epoch");
                        let want = cold[cfg].query(&qp, &qq, qphi, agg).expect("valid instance");
                        prop_assert_eq!(
                            answer, want,
                            "cached answer diverged from cold engine at epoch {} (config {})",
                            epoch, cfg
                        );
                    }
                }
            }
        }
    }

    /// [`Engine::query_colocated`] equals independent [`Engine::query`]
    /// across all four strategies, both aggregates, and
    /// phi in {1/|Q|, 0.5, 1} — including one-query batches, duplicated
    /// queries, permuted member lists, and invalid members.
    #[test]
    fn colocated_batches_match_independent_queries((g, p, q, _phi) in arb_instance()) {
        let phis = [1.0 / q.len() as f64, 0.5, 1.0];
        for live in cold_engines(&g) {
            for agg in [Aggregate::Max, Aggregate::Sum] {
                // A co-located batch: every phi over the same Q, plus a
                // duplicate, a permuted copy, and an invalid straggler.
                let mut rev_q = q.clone();
                rev_q.reverse();
                let bad = vec![g.num_nodes() as u32 + 7];
                let mut batch: Vec<BatchQuery> = phis
                    .iter()
                    .map(|&f| BatchQuery::new(p.clone(), q.clone(), f, agg))
                    .collect();
                batch.push(BatchQuery::new(p.clone(), q.clone(), phis[0], agg));
                batch.push(BatchQuery::new(p.clone(), rev_q.clone(), 0.5, agg));
                batch.push(BatchQuery::new(p.clone(), bad.clone(), 0.5, agg));
                let got = live.query_colocated(&batch);
                prop_assert_eq!(got.len(), batch.len());
                for (bq, got) in batch.iter().zip(&got) {
                    let want = live.query(&bq.p, &bq.q, bq.phi, bq.agg);
                    prop_assert_eq!(got, &want, "batched != independent ({:?})", agg);
                }

                // One-query batch.
                let solo = [BatchQuery::new(p.clone(), q.clone(), 0.5, agg)];
                let got = live.query_colocated(&solo);
                prop_assert_eq!(&got[0], &live.query(&p, &q, 0.5, agg));
            }
        }
    }

    /// Running the same batch twice on a cached engine answers entirely
    /// from the cache the second time — and still bit-identically.
    #[test]
    fn colocated_cache_replay_is_bit_identical((g, p, q, _phi) in arb_instance()) {
        let live = Engine::new(&g).with_answer_cache(64);
        let batch: Vec<BatchQuery> = [1.0 / q.len() as f64, 0.5, 1.0]
            .iter()
            .flat_map(|&f| {
                [Aggregate::Max, Aggregate::Sum]
                    .map(|agg| BatchQuery::new(p.clone(), q.clone(), f, agg))
            })
            .collect();
        let first = live.query_colocated(&batch);
        let hits_before = live.cache_stats().expect("cache attached").hits;
        let second = live.query_colocated(&batch);
        prop_assert_eq!(&first, &second);
        let stats = live.cache_stats().expect("cache attached");
        prop_assert_eq!(
            stats.hits - hits_before,
            batch.len() as u64,
            "second pass must be all hits"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Model-based churn on the raw [`AnswerCache`]: a random
    /// interleaving of `insert`, `lookup`, and `on_update` is mirrored
    /// into a `HashMap` oracle that replays the documented contract
    /// (insert overwrites; lookup hits iff the key is present at the
    /// looked-up epoch; an update batch promotes exactly the entries
    /// whose region proof holds and invalidates the rest). After every
    /// op the cache and the oracle must agree on hit/miss *and* answer,
    /// `live` must equal the oracle's size, and `live + dead` must never
    /// exceed the slot count — and the whole script must terminate, which
    /// is the regression half: before tombstone reclamation this
    /// workload saturated the probe chains and spun forever.
    ///
    /// Capacity (64) exceeds the key universe (12) and the op count
    /// keeps the arena far from its limit, so the wholesale reset never
    /// fires and the oracle stays exact (`evicted == 0` is asserted).
    #[test]
    fn answer_cache_matches_hashmap_oracle_under_churn(
        script in proptest::collection::vec(any::<u64>(), 30..200),
    ) {
        use fannr::fann::locality::{AnswerCache, CacheKey, NO_REACH};
        use fannr::fann::FannAnswer;
        use fannr::rtree::{Mbr, Pt};
        use std::collections::HashMap;

        const UNIVERSE: u64 = 12;
        let cache = AnswerCache::new(64);
        // key id -> (answer, reach, region). Epochs are implicit: every
        // surviving entry is stamped with the current epoch (inserts use
        // it, promotion moves entries to it, everything else dies).
        let mut model: HashMap<u32, (Option<FannAnswer>, u64, Mbr)> = HashMap::new();
        let mut epoch = 0u64;

        for r in script {
            let id = ((r >> 8) % UNIVERSE) as u32;
            let p = [0u32];
            let q = [id];
            let key = CacheKey { p: &p, q: &q, phi: 1.0, agg: 0, strategy: 1 };
            match r % 4 {
                // Update batch: one touched endpoint, unit scale.
                0 => {
                    let x = Pt::new(((r >> 16) % 128) as f64, ((r >> 24) % 128) as f64);
                    let next = epoch + 1;
                    cache.on_update(epoch, next, &[x], 1.0);
                    model.retain(|_, (_, reach, mbr)| {
                        *reach != NO_REACH && mbr.mindist_point(x) > *reach as f64
                    });
                    epoch = next;
                }
                // Lookup, sometimes at a deliberately stale epoch.
                1 => {
                    let probe_epoch = if (r >> 16) % 5 == 0 { epoch + 1 } else { epoch };
                    let got = cache.lookup(&key, probe_epoch);
                    let want = (probe_epoch == epoch)
                        .then(|| model.get(&id))
                        .flatten();
                    match (got, want) {
                        (None, None) => {}
                        (Some(hit), Some((ans, _, _))) => {
                            prop_assert_eq!(&hit.answer, ans, "hit replays the inserted answer");
                        }
                        (got, want) => {
                            prop_assert!(
                                false,
                                "hit/miss disagreement for key {id}: cache {}, oracle {}",
                                got.is_some(),
                                want.is_some()
                            );
                        }
                    }
                }
                // Insert (overwrites any previous entry for the key).
                _ => {
                    let mbr = {
                        let x = ((r >> 16) % 128) as f64;
                        let y = ((r >> 24) % 128) as f64;
                        Mbr { min_x: x, min_y: y, max_x: x + 4.0, max_y: y + 4.0 }
                    };
                    let reach = if (r >> 4) % 3 == 0 { NO_REACH } else { (r >> 32) % 64 };
                    let answer = ((r >> 5) % 5 != 0).then(|| FannAnswer {
                        p_star: id,
                        dist: (r >> 40) % 1_000,
                        subset: vec![id],
                    });
                    cache.insert(&key, epoch, answer.as_ref(), 0, mbr, reach);
                    model.insert(id, (answer, reach, mbr));
                }
            }
            let (live, dead, slots) = cache.occupancy();
            prop_assert_eq!(live, model.len(), "live slots track the oracle exactly");
            prop_assert!(live + dead <= slots, "occupancy {live}+{dead} overflows {slots} slots");
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.evicted, 0, "capacity chosen so wholesale reset never fires");
    }
}

/// Permuted (and duplicated) `P`/`Q` requests resolve to the same cache
/// entry: the first canonical form misses, every spelling after that hits,
/// and all spellings return the same answer. Regression test for key
/// canonicalization.
#[test]
fn permuted_duplicate_members_share_one_cache_entry() {
    let mut rng = fannr::workload::rng(17);
    let g = fannr::workload::synth::road_network(120, &mut rng);
    let p = fannr::workload::points::uniform_data_points(&g, 0.3, &mut rng);
    let q = fannr::workload::points::uniform_query_points(&g, 5, 0.5, &mut rng);
    assert!(p.len() >= 2 && q.len() >= 2);

    let engine = Engine::new(&g).with_answer_cache(16);
    for agg in [Aggregate::Max, Aggregate::Sum] {
        let (base, outcome, _) = engine.query_cached(&p, &q, 0.5, agg).expect("valid");
        assert_eq!(outcome, CacheOutcome::Miss, "cold cache must miss first");

        // Reversed, rotated, and duplicated spellings of the same sets.
        let mut p_rev = p.clone();
        p_rev.reverse();
        let mut q_rot = q.clone();
        q_rot.rotate_left(2);
        let mut p_dup = p.clone();
        p_dup.extend_from_slice(&p[..2]);
        let mut q_dup_rev = q.clone();
        q_dup_rev.reverse();
        q_dup_rev.push(q[0]);

        let spellings: [(&[u32], &[u32]); 4] = [
            (&p_rev, &q),
            (&p, &q_rot),
            (&p_dup, &q_dup_rev),
            (&p_rev, &q_rot),
        ];
        for (sp, sq) in spellings {
            let (answer, outcome, _) = engine.query_cached(sp, sq, 0.5, agg).expect("valid");
            assert_eq!(
                outcome,
                CacheOutcome::Hit,
                "permuted spelling must hit the canonical entry ({agg:?})"
            );
            assert_eq!(answer, base, "hit replays the same answer ({agg:?})");
        }
    }
    let stats = engine.cache_stats().expect("cache attached");
    assert_eq!(
        stats.insertions, 2,
        "one entry per aggregate, not per spelling"
    );
}

/// Multi-writer epoch churn: writers bump epochs concurrently while
/// readers serve a small query pool through the cache. Every answer must
/// be bit-identical to a cold-cache engine built on the graph at the
/// *exact* epoch the query pinned. The `stress_` prefix is the CI filter
/// for the multi-threaded step.
#[test]
fn stress_cache_coherent_under_multi_writer_epoch_churn() {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    const WRITERS: usize = 3;
    const READERS: usize = 4;
    const EDGES_PER_WRITER: usize = 4;
    const RUN_FOR: Duration = Duration::from_millis(1200);

    let mut rng = fannr::workload::rng(29);
    let base = fannr::workload::synth::road_network(200, &mut rng);
    let edges = edge_list(&base);
    assert!(edges.len() >= WRITERS * EDGES_PER_WRITER);
    let groups: Vec<Vec<(u32, u32, u32)>> = (0..WRITERS)
        .map(|i| edges[i * EDGES_PER_WRITER..(i + 1) * EDGES_PER_WRITER].to_vec())
        .collect();

    // A shared query pool small enough that hits actually happen.
    let p = fannr::workload::points::uniform_data_points(&base, 0.2, &mut rng);
    let q1 = fannr::workload::points::uniform_query_points(&base, 4, 0.4, &mut rng);
    let q2 = fannr::workload::points::uniform_query_points(&base, 6, 0.6, &mut rng);
    let pool: Vec<(Vec<u32>, Vec<u32>, f64, Aggregate)> = vec![
        (p.clone(), q1.clone(), 0.5, Aggregate::Max),
        (p.clone(), q1.clone(), 0.5, Aggregate::Sum),
        (p.clone(), q2.clone(), 1.0, Aggregate::Max),
        (p.clone(), q2, 0.25, Aggregate::Sum),
        (p, q1, 1.0, Aggregate::Sum),
    ];

    let engine = Engine::new(&base).with_answer_cache(256);
    // epoch -> graph at that epoch. Writers hold `publish` across
    // apply+record, so the snapshot pinned right after an apply is that
    // exact epoch's graph.
    let history: Mutex<HashMap<u64, Graph>> = Mutex::new(HashMap::from([(0, base.clone())]));
    let publish = Mutex::new(());
    let stop = AtomicBool::new(false);
    let total_hits = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for group in &groups {
            let engine = engine.clone();
            let (stop, history, publish) = (&stop, &history, &publish);
            scope.spawn(move || {
                let mut doubled = false;
                while !stop.load(Ordering::Relaxed) {
                    doubled = !doubled;
                    let batch: Vec<WeightUpdate> = group
                        .iter()
                        .map(|&(u, v, w)| WeightUpdate {
                            u,
                            v,
                            w: if doubled { w.saturating_mul(2) } else { w },
                        })
                        .collect();
                    let guard = publish.lock().unwrap();
                    let epoch = engine.apply_updates(&batch).expect("admissible");
                    let snap = engine.snapshot();
                    assert_eq!(snap.epoch(), epoch, "publish lock serializes writers");
                    history.lock().unwrap().insert(epoch, snap.graph().clone());
                    drop(guard);
                    std::thread::yield_now();
                }
            });
        }

        for r in 0..READERS {
            let engine = engine.clone();
            let (stop, history, pool, total_hits) = (&stop, &history, &pool, &total_hits);
            scope.spawn(move || {
                let mut i = r;
                let mut hits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (qp, qq, phi, agg) = &pool[i % pool.len()];
                    i += 1;
                    let (answer, outcome, epoch) =
                        engine.query_cached(qp, qq, *phi, *agg).expect("valid");
                    if outcome == CacheOutcome::Hit {
                        hits += 1;
                    }
                    // The writer records each epoch under the publish lock
                    // right after storing it; spin until it is visible.
                    let graph = loop {
                        if let Some(g) = history.lock().unwrap().get(&epoch).cloned() {
                            break g;
                        }
                        std::thread::yield_now();
                    };
                    let cold = Engine::new(&graph);
                    let want = cold.query(qp, qq, *phi, *agg).expect("valid");
                    assert_eq!(
                        answer, want,
                        "cached answer diverged from cold engine at epoch {epoch}"
                    );
                }
                total_hits.fetch_add(hits, Ordering::Relaxed);
            });
        }

        let started = Instant::now();
        while started.elapsed() < RUN_FOR {
            std::thread::sleep(Duration::from_millis(25));
        }
        stop.store(true, Ordering::Relaxed);
    });

    let stats = engine.cache_stats().expect("cache attached");
    assert!(stats.misses > 0, "churn must force recomputation");
    assert_eq!(
        stats.hits,
        total_hits.load(Ordering::Relaxed),
        "engine counters account for every reader-observed hit"
    );
}
