//! Cooperative-cancellation correctness.
//!
//! The contract has two sides, both tested for every strategy the engine
//! dispatches (Exact-max, R-List/INE, APX-sum/INE, IER-kNN/PHL):
//!
//! * **transparency** — a live token (no deadline, never cancelled) must
//!   be observationally invisible: bit-identical answers to the
//!   uncancelled path, across a property-sampled space of instances;
//! * **never a wrong answer** — a token that is already expired (or is
//!   cancelled mid-flight) yields `QueryError::Cancelled`, not a partial
//!   result silently presented as exact.

use std::time::Duration;

use fannr::fann::engine::Engine;
use fannr::fann::{Aggregate, QueryError};
use fannr::roadnet::{CancelToken, Graph, GraphBuilder};
use proptest::prelude::*;

/// A random connected graph: spanning tree + `extra` random edges
/// (same shape as `tests/properties.rs`).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..28, 0usize..20, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            let x = (next() % 1000) as f64;
            let y = (next() % 1000) as f64;
            b.add_node(x, y);
        }
        let euclid = |b: &GraphBuilder, u: u32, v: u32| {
            let (ux, uy) = b.coord_of(u);
            let (vx, vy) = b.coord_of(v);
            ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt()
        };
        for v in 1..n as u32 {
            let u = (next() % v as u64) as u32;
            let w = euclid(&b, u, v).ceil() as u32 + (next() % 50) as u32;
            b.add_edge(u, v, w.max(1));
        }
        for _ in 0..extra {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u != v {
                let w = euclid(&b, u, v).ceil() as u32 + (next() % 50) as u32;
                b.add_edge(u, v, w.max(1));
            }
        }
        b.build()
    })
}

/// Graph plus non-empty P, Q and a phi.
fn arb_instance() -> impl Strategy<Value = (Graph, Vec<u32>, Vec<u32>, f64)> {
    (arb_graph(), any::<u64>(), 1usize..100).prop_map(|(g, seed, phi_pct)| {
        let n = g.num_nodes();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        fn pick(next: &mut dyn FnMut() -> u64, n: usize, count: usize) -> Vec<u32> {
            let mut v: Vec<u32> = (0..count).map(|_| (next() % n as u64) as u32).collect();
            v.sort_unstable();
            v.dedup();
            v
        }
        let pc = 1 + (next() % 8) as usize;
        let p = pick(&mut next, n, pc);
        let qc = 1 + (next() % 8) as usize;
        let q = pick(&mut next, n, qc);
        (g, p, q, (phi_pct as f64) / 100.0)
    })
}

/// The three engine configurations covering all four strategies.
fn engines(g: &Graph) -> [Engine; 3] {
    [
        Engine::new(g),                        // Exact-max / R-List
        Engine::new(g).allow_approx_sum(true), // Exact-max / APX-sum
        Engine::new(g).with_labels(),          // IER-kNN/PHL
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A never-cancelled token is invisible: every strategy, both
    /// aggregates, bit-identical answers and errors.
    #[test]
    fn live_token_is_bit_identical((g, p, q, phi) in arb_instance()) {
        let token = CancelToken::new(); // no deadline, never cancelled
        for engine in &engines(&g) {
            for agg in [Aggregate::Max, Aggregate::Sum] {
                let plain = engine.query(&p, &q, phi, agg);
                let cancellable = engine.query_cancellable(&p, &q, phi, agg, &token);
                prop_assert_eq!(
                    &plain, &cancellable,
                    "strategy {} diverged under a live token",
                    engine.strategy_for(agg).name()
                );
                // A long-but-finite deadline must be equally invisible.
                let token = CancelToken::with_timeout(Duration::from_secs(3600));
                let deadline = engine.query_cancellable(&p, &q, phi, agg, &token);
                prop_assert_eq!(&plain, &deadline);
            }
        }
    }

    /// A pre-expired token yields `Cancelled` — never a wrong answer —
    /// whenever the inputs are otherwise valid.
    #[test]
    fn expired_token_cancels((g, p, q, phi) in arb_instance()) {
        let token = CancelToken::new();
        token.cancel();
        for engine in &engines(&g) {
            for agg in [Aggregate::Max, Aggregate::Sum] {
                // Skip instances the engine rejects outright (invalid phi
                // never reaches a search; validation precedes polling).
                if engine.query(&p, &q, phi, agg).is_err() {
                    continue;
                }
                let got = engine.query_cancellable(&p, &q, phi, agg, &token);
                prop_assert!(
                    matches!(got, Err(QueryError::Cancelled)),
                    "strategy {} returned {:?} for a cancelled token",
                    engine.strategy_for(agg).name(),
                    got
                );
            }
        }
    }
}

/// `arm` re-arms: after a cancelled request the same token serves a fresh
/// one, which is how serving workers recycle their per-thread token.
#[test]
fn token_rearm_recovers_after_cancellation() {
    let mut rng = fannr::workload::rng(21);
    let g = fannr::workload::synth::road_network(200, &mut rng);
    let p = fannr::workload::points::uniform_data_points(&g, 0.1, &mut rng);
    let q = fannr::workload::points::uniform_query_points(&g, 4, 0.5, &mut rng);
    let engine = Engine::new(&g);
    let token = CancelToken::new();
    let mut session = engine.session(&token);

    token.arm(Some(Duration::ZERO));
    std::thread::sleep(Duration::from_millis(1));
    let cancelled = session.query(&p, &q, 0.5, Aggregate::Max);
    assert!(
        matches!(cancelled, Err(QueryError::Cancelled)),
        "{cancelled:?}"
    );

    token.arm(None);
    let answer = session.query(&p, &q, 0.5, Aggregate::Max);
    assert_eq!(answer, engine.query(&p, &q, 0.5, Aggregate::Max));
}

/// Cancelling from another thread mid-query terminates the search with
/// `Cancelled` (cooperative preemption, the serving deadline mechanism).
#[test]
fn cross_thread_cancellation_interrupts() {
    let mut rng = fannr::workload::rng(33);
    let g = fannr::workload::synth::road_network(3_000, &mut rng);
    let p = fannr::workload::points::uniform_data_points(&g, 0.05, &mut rng);
    let q = fannr::workload::points::uniform_query_points(&g, 8, 0.5, &mut rng);
    let engine = Engine::new(&g);
    let token = CancelToken::new();

    std::thread::scope(|scope| {
        let canceller = scope.spawn(|| {
            std::thread::sleep(Duration::from_micros(200));
            token.cancel();
        });
        // Re-run until the cancel lands mid-query (it may beat the query
        // start, which also must yield `Cancelled`, or lose the race
        // entirely on the first iterations).
        let got = engine.query_cancellable(&p, &q, 0.5, Aggregate::Sum, &token);
        canceller.join().unwrap();
        match got {
            Err(QueryError::Cancelled) => {}
            Ok(ans) => {
                // The query won the race; the answer must then be exact.
                assert_eq!(ans, engine.query(&p, &q, 0.5, Aggregate::Sum).unwrap());
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    });
}
